package dlrmperf

import (
	"context"
	"fmt"
	"sync"

	"dlrmperf/internal/engine"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/scenario"
)

// Engine is the multi-device prediction service of the facade: one
// device-keyed cache of calibrated kernel models and overhead
// databases, serving batches of (workload, batch size, device)
// prediction requests concurrently. Devices calibrate lazily on first
// use — at most once each, no matter how many concurrent requests hit
// them — and calibrations can be exported and re-imported to warm-start
// other engines ("calibrate once per device, predict anywhere").
type Engine struct {
	eng *engine.Engine

	mu      sync.RWMutex
	devices []string
}

// EngineConfig customizes NewEngineWith.
type EngineConfig struct {
	// Devices restricts the engine (default: all supported devices).
	Devices []string
	// Seed drives every derived calibration and measurement stream
	// (default 2022). Each device mixes its name into the seed, so
	// devices are decorrelated but individually reproducible.
	Seed uint64
	// Workers bounds concurrent calibration jobs and in-flight batch
	// predictions (default runtime.GOMAXPROCS).
	Workers int
	// Calib overrides calibration options (Seed is derived per device).
	Calib perfmodel.CalibOptions
	// ResultCacheSize caps the prediction result cache (default 512
	// entries; negative disables caching).
	ResultCacheSize int
	// AssetCaps bounds the engine's evictable asset classes (runs,
	// overhead DBs, graphs). Zero fields select the defaults; negative
	// fields leave a class unbounded. Calibrations are always pinned.
	AssetCaps AssetCaps
}

// AssetCaps bounds the resident entry count of each evictable asset
// class in the engine's unified store.
type AssetCaps = engine.AssetCaps

// AssetStats is the engine's per-class asset store report: resident
// entries against capacity, approximate resident bytes, and lifetime
// hit/miss/eviction counters for calibrations (pinned), runs, overhead
// DBs, graphs, and cached results.
type AssetStats = engine.AssetStats

// AssetClassStats is one class's entry in AssetStats.
type AssetClassStats = engine.ClassStats

// FastCalibConfig returns an EngineConfig with low-fidelity
// calibration: eighth-size microbenchmark sweeps and a single tiny
// network per ML-based kernel family, so a device calibrates in
// fractions of a second instead of minutes. Predictions are still
// fully deterministic in the seed, just lower fidelity — this is the
// preset behind `dlrmperf-serve -fast-calib`, smoke tests, and CI,
// and the single source of truth for those knobs.
func FastCalibConfig(seed uint64, workers int) EngineConfig {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 8
	}
	return EngineConfig{
		Seed:    seed,
		Workers: workers,
		Calib: perfmodel.CalibOptions{
			SweepSizes: sizes, Ensemble: 1,
			MLPConfig: mlp.Config{HiddenLayers: 1, Width: 16, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 10, BatchSize: 64},
		},
	}
}

// NewEngine returns a lazy prediction engine over the given devices
// (default: all supported devices) with default options. No calibration
// runs until the first request needs it.
func NewEngine(devices ...string) (*Engine, error) {
	return NewEngineWith(EngineConfig{Devices: devices})
}

// NewEngineWith returns a lazy prediction engine with full control over
// seed, worker pool, and calibration options.
func NewEngineWith(cfg EngineConfig) (*Engine, error) {
	if len(cfg.Devices) == 0 {
		cfg.Devices = hw.Names()
	}
	for _, d := range cfg.Devices {
		if _, err := hw.ByName(d); err != nil {
			return nil, err
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2022
	}
	calib := cfg.Calib
	calib.IncludeCNN = true
	return &Engine{
		eng: engine.New(engine.Options{
			Seed: cfg.Seed, SaltDeviceSeeds: true,
			Calib: calib, Workers: cfg.Workers,
			ResultCacheSize: cfg.ResultCacheSize,
			AssetCaps:       cfg.AssetCaps,
		}),
		devices: append([]string(nil), cfg.Devices...),
	}, nil
}

// Devices returns the devices this engine serves.
func (e *Engine) Devices() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.devices...)
}

// checkServes returns an error when device is outside the engine's
// device set. It runs before any engine dispatch, so an out-of-set
// request never triggers a calibration it would then discard.
func (e *Engine) checkServes(device string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, d := range e.devices {
		if d == device {
			return nil
		}
	}
	return fmt.Errorf("dlrmperf: device %q not in engine device set %v", device, e.devices)
}

// PredictRequest names one prediction: a scenario (by registered name,
// or a built-in workload plus execution strategy) on a device.
type PredictRequest struct {
	// Workload is a built-in workload name (see Workloads). Ignored
	// when Scenario is set.
	Workload string
	// Batch is the global training batch size (0 with Scenario set
	// selects the scenario's default).
	Batch int64
	// Device is a supported device name (see Devices).
	Device string
	// SharedOverheads charges host overheads from the device's shared
	// cross-DLRM database instead of the workload's own (the paper's
	// large-scale prediction mode).
	SharedOverheads bool
	// Scenario names a registered scenario generator (see Scenarios);
	// it supplies the workload, table population, and default execution
	// width.
	Scenario string
	// GPUs overrides the execution width: widths above 1 predict
	// hybrid-parallel training (dense data-parallel, embedding tables
	// sharded by the planner) across that many identical devices. 0
	// keeps the scenario's default (1 for plain workload requests).
	GPUs int
	// Comm names the interconnect model for multi-GPU requests
	// ("nvlink" default, "pcie").
	Comm string
}

// ScenarioRequest builds a request from a registered scenario name.
// batch 0 and gpus 0 keep the scenario's defaults.
func ScenarioRequest(device, scenarioName string, batch int64, gpus int) PredictRequest {
	return PredictRequest{Device: device, Scenario: scenarioName, Batch: batch, GPUs: gpus}
}

// Scenarios lists the registered scenario generator names.
func Scenarios() []string { return scenario.Names() }

// PredictResult pairs a request with its prediction or error.
type PredictResult struct {
	Request    PredictRequest
	Prediction Prediction
	// GPUs is the execution width the prediction covers (>= 1).
	GPUs int
	// ScalingEfficiency is the retained fraction of linear scaling
	// (1 for single-GPU results).
	ScalingEfficiency float64
	// AllReduceUs and AllToAllUs break out the per-step collective
	// times of multi-GPU predictions.
	AllReduceUs, AllToAllUs float64
	// ShardImbalance is the sharding plan's max/mean - 1 device load
	// spread (0 when no embedding sharding took place).
	ShardImbalance float64
	// CacheHit marks results served from the engine's prediction
	// result cache.
	CacheHit bool
	Err      error
}

// Predict serves one request, lazily calibrating the device and
// collecting its overhead statistics on first use. Requests for
// devices outside the engine's set fail fast, before any calibration.
func (e *Engine) Predict(req PredictRequest) PredictResult {
	return e.PredictContext(context.Background(), req)
}

// PredictContext is Predict with a caller deadline: when ctx expires
// the caller gets ctx.Err() immediately while any computation it
// started keeps running detached and lands in the result cache, so a
// canceled request never poisons the in-flight entry or wastes the
// work for the next identical request. This is the entry point of the
// async serving layer (internal/serve), which threads per-request HTTP
// deadlines through here.
func (e *Engine) PredictContext(ctx context.Context, req PredictRequest) PredictResult {
	if err := e.checkServes(req.Device); err != nil {
		e.eng.RejectRequest()
		return PredictResult{Request: req, Err: err}
	}
	ereq, err := toEngine(req)
	if err != nil {
		e.eng.RejectRequest()
		return PredictResult{Request: req, Err: err}
	}
	r := e.eng.PredictCtx(ctx, ereq)
	var res PredictResult
	fromEngine(&res, req, &r)
	return res
}

// PredictBatch fans the requests out across the engine's worker pool
// and returns one result per request, in request order. Results are
// bit-identical to sequential Predict calls; every device calibrates at
// most once regardless of how many requests land on it concurrently.
// Per-request failures (unknown workload, device outside the engine's
// set) are reported in the failing slot and do not disturb the rest of
// the batch.
func (e *Engine) PredictBatch(reqs []PredictRequest) []PredictResult {
	return e.PredictBatchContext(context.Background(), reqs)
}

// PredictBatchContext is PredictBatch under a shared caller deadline:
// canceling ctx abandons the whole batch (each slot reports ctx.Err())
// without aborting or poisoning any in-flight computation.
func (e *Engine) PredictBatchContext(ctx context.Context, reqs []PredictRequest) []PredictResult {
	out := make([]PredictResult, len(reqs))
	ereqs := make([]engine.Request, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, r := range reqs {
		if err := e.checkServes(r.Device); err != nil {
			e.eng.RejectRequest()
			out[i] = PredictResult{Request: r, Err: err}
			continue
		}
		ereq, err := toEngine(r)
		if err != nil {
			e.eng.RejectRequest()
			out[i] = PredictResult{Request: r, Err: err}
			continue
		}
		ereqs = append(ereqs, ereq)
		idx = append(idx, i)
	}
	res := e.eng.PredictBatchCtx(ctx, ereqs)
	for j := range res {
		fromEngine(&out[idx[j]], reqs[idx[j]], &res[j])
	}
	return out
}

// CacheStats returns the engine's prediction result cache counters: a
// miss is a request that reached the compute path (computed, or joined
// a computation that failed), a hit anything served from memory
// (including joins on an identical in-flight request that succeeded).
// hits + misses equals the requests the engine served; validation
// rejects are counted by RejectedRequests instead.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.eng.CacheStats()
}

// RejectedRequests counts requests rejected at validation — engine
// scenario validation plus the facade's device-set check and scenario
// resolution — before the compute path and the cache counters, so
// hits + misses + rejected accounts for every dispatched request.
func (e *Engine) RejectedRequests() uint64 { return e.eng.RejectedRequests() }

// AssetStats reports the engine's unified asset store: per-class
// resident counts, capacities, approximate bytes, and
// hit/miss/eviction counters.
func (e *Engine) AssetStats() AssetStats { return e.eng.AssetStats() }

// CachedResults reports the resident prediction result cache entries.
func (e *Engine) CachedResults() int { return e.eng.CachedResults() }

// ResolveSpec resolves the request into the exact scenario spec the
// engine would execute: named scenarios go through the registry with
// batch/width defaults applied, plain workload requests become
// single-device (or width-overridden) ad-hoc scenarios, and the
// request's Comm override is applied last. Two requests whose resolved
// specs share a fingerprint (on the same device, with the same
// SharedOverheads) predict identically — this is the identity the
// explore layer deduplicates grid points by before any prediction
// runs. The spec is deliberately NOT validated here: engine.Predict
// validates first thing (before any asset work) and tallies failures
// in RejectedRequests, so validating twice would keep rejects out of
// the engine's counters and break hits+misses+rejected == dispatched.
// Callers that want to reject invalid points without dispatching
// (explore does) run Validate on the returned spec themselves.
func (r PredictRequest) ResolveSpec() (scenario.Spec, error) {
	var spec scenario.Spec
	if r.Scenario != "" {
		s, err := scenario.Build(r.Scenario, r.Batch, r.GPUs)
		if err != nil {
			return scenario.Spec{}, err
		}
		spec = s
	} else {
		spec = scenario.Single(r.Workload, r.Batch)
		if r.GPUs > 0 {
			spec.Devices = r.GPUs
		}
	}
	if r.Comm != "" {
		spec.Comm = r.Comm
	}
	return spec, nil
}

// toEngine resolves the public request into an engine request.
func toEngine(req PredictRequest) (engine.Request, error) {
	spec, err := req.ResolveSpec()
	if err != nil {
		return engine.Request{}, err
	}
	return engine.Request{Device: req.Device, Scenario: spec, Shared: req.SharedOverheads}, nil
}

// fromEngine flattens an engine result into *res in place — pointer in,
// pointer out, so the warm batch path moves each large result struct
// exactly once.
func fromEngine(res *PredictResult, req PredictRequest, r *engine.Result) {
	res.Request = req
	res.GPUs = r.Request.Scenario.NumDevices()
	res.ScalingEfficiency = r.ScalingEfficiency()
	res.CacheHit = r.CacheHit
	res.Err = r.Err
	if res.Err == nil {
		res.Prediction = Prediction{
			E2EUs:    r.Prediction.E2E,
			ActiveUs: r.Prediction.Active,
			CPUUs:    r.Prediction.CPUTime,
		}
	}
	if r.Multi != nil {
		res.AllReduceUs = r.Multi.AllReduceUs
		res.AllToAllUs = r.Multi.AllToAllUs
	}
	if r.Plan != nil {
		res.ShardImbalance = r.Plan.Imbalance()
	}
}

// Calibrate eagerly calibrates every device in the engine's set, in
// parallel, and returns the first error. It is optional — predictions
// calibrate lazily — but lets a service front-load the expensive work
// before taking traffic.
func (e *Engine) Calibrate() error {
	devices := e.Devices()
	var wg sync.WaitGroup
	errs := make([]error, len(devices))
	for i, d := range devices {
		wg.Add(1)
		go func(i int, d string) {
			defer wg.Done()
			_, errs[i] = e.eng.Calibration(d)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CalibrationRuns reports how many calibrations actually executed for a
// device: 1 after first use, 0 before first use or after a warm start.
func (e *Engine) CalibrationRuns(device string) int {
	return e.eng.CalibrationRuns(device)
}

// SaveAssets serializes one device's portable asset set — its
// calibrated kernel models plus any overhead databases collected so far
// — calibrating first if needed.
func (e *Engine) SaveAssets(device string) ([]byte, error) {
	if err := e.checkServes(device); err != nil {
		return nil, err
	}
	return e.eng.SaveAssets(device)
}

// AssetsEpoch reports a device's asset-mutation counter: it advances on
// calibration, installs, and overhead-DB collection. A cluster worker's
// asset sync re-exports (SaveAssets) and re-pushes a device only when
// its epoch has moved since the last push.
func (e *Engine) AssetsEpoch(device string) uint64 { return e.eng.AssetsEpoch(device) }

// CalibratedDevices lists the devices holding a resident calibration
// (executed or installed), sorted — the set worth exporting.
func (e *Engine) CalibratedDevices() []string { return e.eng.CalibratedDevices() }

// LoadAssets warm-starts the engine from a SaveAssets payload: the
// covered device will never calibrate again in this engine.
func (e *Engine) LoadAssets(data []byte) error {
	device, err := e.eng.LoadAssets(data)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, d := range e.devices {
		if d == device {
			return nil
		}
	}
	e.devices = append(e.devices, device)
	return nil
}
