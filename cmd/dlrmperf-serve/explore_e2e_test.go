package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"

	"dlrmperf/internal/client"
	"dlrmperf/internal/cluster"
	"dlrmperf/internal/explore"
)

// TestE2EExploreCluster is the cross-process design-space-exploration
// end-to-end: 1 coordinator + 2 self-registering fast-calib workers,
// the same grid swept through the coordinator's /v1/explore twice via
// the typed client. The cold pass fans the unique configurations
// across the cluster with device-affine routing (each device
// calibrated on exactly one worker); the warm pass is served from
// caches at a hit rate ≥ 0.9; the aggregated /stats invariant holds
// throughout.
func TestE2EExploreCluster(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("process harness assumes unix signals")
	}
	bin := filepath.Join(t.TempDir(), "dlrmperf-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}

	coord := startServeProc(t, "coordinator", bin,
		"-coordinator", "-listen", "127.0.0.1:0", "-liveness", "3s")
	startServeProc(t, "worker1", bin,
		"-listen", "127.0.0.1:0", "-fast-calib",
		"-register", coord.base(), "-heartbeat", "200ms")
	startServeProc(t, "worker2", bin,
		"-listen", "127.0.0.1:0", "-fast-calib",
		"-register", coord.base(), "-heartbeat", "200ms")

	ctx := context.Background()
	cl := client.New(coord.base())
	waitForWorkers(t, cl, coord, 2)

	grid := explore.Grid{
		Scenarios: []string{"dlrm-default", "dlrm-ddp"},
		Devices:   []string{"V100", "P100"},
		GPUs:      []int{1, 2},
		Batches:   []int64{512},
	}
	sweep := func(pass string) *explore.Report {
		t.Helper()
		rep, err := cl.Explore(ctx, grid)
		if err != nil {
			t.Fatalf("%s sweep: %v\ncoordinator tail:\n%s", pass, err, coord.tail())
		}
		if rep.GridPoints != 8 || rep.Unique != 8 || rep.Failed != 0 {
			t.Fatalf("%s sweep coverage = %d points / %d unique / %d failed, want 8/8/0: %+v",
				pass, rep.GridPoints, rep.Unique, rep.Failed, rep.FailedSamples)
		}
		return rep
	}

	cold := sweep("cold")
	if len(cold.Frontier) == 0 || len(cold.Best) == 0 {
		t.Fatalf("cold sweep missing frontier or best table")
	}

	// Device-affine fan-out: each device's configurations landed on —
	// and calibrated — exactly one worker.
	var st cluster.Stats
	if err := cl.StatsInto(ctx, &st); err != nil {
		t.Fatal(err)
	}
	owner := map[string]string{}
	for workerID, devs := range st.Calibrations {
		for dev, runs := range devs {
			if prev, dup := owner[dev]; dup {
				t.Fatalf("device %s calibrated on both %s and %s", dev, prev, workerID)
			}
			owner[dev] = workerID
			if runs != 1 {
				t.Fatalf("device %s calibrated %d times on %s, want 1", dev, runs, workerID)
			}
		}
	}
	for _, dev := range []string{"V100", "P100"} {
		if owner[dev] == "" {
			t.Fatalf("device %s calibrated nowhere", dev)
		}
	}
	if got := st.Accounted(); got != st.Requests {
		t.Fatalf("cluster invariant broken after cold sweep: accounted %d, requests %d", got, st.Requests)
	}

	warm := sweep("warm")
	if warm.CacheHitRate < 0.9 {
		t.Fatalf("warm sweep hit rate = %v, want >= 0.9", warm.CacheHitRate)
	}
	if err := cl.StatsInto(ctx, &st); err != nil {
		t.Fatal(err)
	}
	if got := st.Accounted(); got != st.Requests {
		t.Fatalf("cluster invariant broken after warm sweep: accounted %d, requests %d", got, st.Requests)
	}
	t.Logf("explore e2e: cold %.0f configs/sec, warm %.0f configs/sec at hit rate %.2f",
		cold.ConfigsPerSec, warm.ConfigsPerSec, warm.CacheHitRate)
}
