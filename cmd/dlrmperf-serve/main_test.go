package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlrmperf"
	"dlrmperf/internal/serve"
)

// tinyEngineConfig keeps the serve tests fast: the driver's -fast-calib
// fidelity (eighth-size sweeps, a single tiny network per ML-based
// kernel family), so calibration takes fractions of a second instead of
// minutes.
func tinyEngineConfig() dlrmperf.EngineConfig {
	return engineConfig(17, 4, true)
}

// wireAssets mirrors the engine's serialized asset schema for
// inspection in tests.
type wireAssets struct {
	Device    string                     `json:"device"`
	Overheads map[string]json.RawMessage `json:"overheads"`
}

// TestWarmStartServeResaveRoundTrip is the -save-assets contract: a
// warm-started run (zero calibrations) that collects a *new* overhead
// DB must still re-save assets for every device that served, and the
// re-saved file must carry the new DB. The pre-fix driver keyed the
// save loop on calibration counts and silently saved nothing here.
func TestWarmStartServeResaveRoundTrip(t *testing.T) {
	// Source engine: calibrate V100 once (tiny options) and export a
	// registry-only asset file — no overhead DBs collected yet.
	src, err := dlrmperf.NewEngineWith(tinyEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	assets, err := src.SaveAssets(dlrmperf.V100)
	if err != nil {
		t.Fatal(err)
	}
	var exported wireAssets
	if err := json.Unmarshal(assets, &exported); err != nil {
		t.Fatal(err)
	}
	if len(exported.Overheads) != 0 {
		t.Fatalf("source assets already carry overhead DBs %v; the round trip needs a fresh one", exported.Overheads)
	}

	dir := t.TempDir()
	assetPath := filepath.Join(dir, "v100.json")
	if err := os.WriteFile(assetPath, assets, 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm-started serve: collects the DLRM_default overhead DB on the
	// fly and re-saves.
	reqs := []serve.Request{
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100},
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100},
	}
	saveDir := filepath.Join(dir, "resave")
	rep, err := serveOnce(serveConfig{
		Engine:     tinyEngineConfig(),
		AssetPaths: []string{assetPath},
		SaveAssets: saveDir,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("warm-started serve failed %d requests: %+v", rep.Failed, rep.Results)
	}
	if len(rep.Calibrations) != 0 {
		t.Fatalf("warm-started serve calibrated: %v", rep.Calibrations)
	}
	if rep.Cache.Hits+rep.Cache.Misses != uint64(rep.Requests) {
		t.Errorf("cache invariant broken: %d+%d != %d requests",
			rep.Cache.Hits, rep.Cache.Misses, rep.Requests)
	}
	if got := rep.Assets.Class("calibrations").Resident; got != 1 {
		t.Errorf("assets report %d resident calibrations, want 1", got)
	}

	resaved, err := os.ReadFile(filepath.Join(saveDir, "V100.json"))
	if err != nil {
		t.Fatalf("warm-started device was not re-saved: %v", err)
	}
	var round wireAssets
	if err := json.Unmarshal(resaved, &round); err != nil {
		t.Fatal(err)
	}
	if round.Device != dlrmperf.V100 {
		t.Errorf("re-saved device = %q", round.Device)
	}
	if _, ok := round.Overheads["DLRM_default"]; !ok {
		t.Fatalf("re-saved assets dropped the newly collected DB; have %v", round.Overheads)
	}

	// Serving again from the re-saved assets reproduces the prediction
	// bit-for-bit without calibrating or re-profiling.
	rep2, err := serveOnce(serveConfig{
		Engine:     tinyEngineConfig(),
		AssetPaths: []string{filepath.Join(saveDir, "V100.json")},
	}, reqs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failed != 0 || len(rep2.Calibrations) != 0 {
		t.Fatalf("second warm start recalibrated or failed: %+v", rep2)
	}
	if rep.Results[0].E2EUs != rep2.Results[0].E2EUs {
		t.Errorf("round-tripped prediction differs: %v vs %v",
			rep.Results[0].E2EUs, rep2.Results[0].E2EUs)
	}
}

// TestServeReportInvariants covers the cold path on a tiny engine: the
// report's cache counters account for every request served, rejected
// requests stay out of them, and the assets block carries all five
// classes.
func TestServeReportInvariants(t *testing.T) {
	reqs := []serve.Request{
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100},
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100}, // duplicate: cache hit
		{Workload: "no_such_model", Batch: 512, Device: dlrmperf.V100},
		// comm on a single-device spec: rejected at engine validation.
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100, Comm: "pcie"},
	}
	rep, err := serveOnce(serveConfig{Engine: tinyEngineConfig()}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 2 {
		t.Fatalf("failed = %d, want 2 (unknown workload + comm on width 1): %+v", rep.Failed, rep.Results)
	}
	// The unknown workload passes structural validation and fails in
	// compute (a miss); the comm-on-width-1 request is rejected at
	// validation and kept out of the hit/miss counters: every request
	// dispatched is accounted, hits+misses+rejected == requests.
	if rep.Cache.Hits != 1 || rep.Cache.Misses != 2 || rep.Cache.Rejected != 1 {
		t.Errorf("cache = %d/%d/%d hit/miss/rejected, want 1/2/1",
			rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Rejected)
	}
	if rep.Cache.Hits+rep.Cache.Misses+rep.Cache.Rejected != uint64(rep.Requests) {
		t.Errorf("cache invariant broken: %d+%d+%d != %d requests",
			rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Rejected, rep.Requests)
	}
	// The rejected block separates the walls: a validation reject here,
	// no queue-full or draining rejections in a blocking one-shot run.
	if rep.Rejected.Validation != 1 || rep.Rejected.QueueFull != 0 || rep.Rejected.Draining != 0 {
		t.Errorf("rejected = %+v, want validation 1, queue-full 0, draining 0", rep.Rejected)
	}
	want := map[string]bool{"calibrations": true, "runs": true, "overheads": true, "graphs": true, "results": true}
	for _, c := range rep.Assets.Classes {
		delete(want, c.Class)
	}
	if len(want) != 0 {
		t.Errorf("assets block missing classes: %v", want)
	}
	if rep.Assets.TotalBytes <= 0 {
		t.Errorf("assets total bytes = %d, want > 0", rep.Assets.TotalBytes)
	}
}

// TestSaveAssetsFailurePropagates is the exit-code bugfix: when
// -save-assets cannot write, serveOnce must return BOTH the report —
// with a structured save_assets_failed error block, so the rows that
// served are not lost — and a non-nil error that the driver turns into
// a non-zero exit.
func TestSaveAssetsFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	// A regular file where the save directory should go: MkdirAll fails.
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	reqs := []serve.Request{{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100}}
	rep, err := serveOnce(serveConfig{
		Engine:     tinyEngineConfig(),
		SaveAssets: blocker,
	}, reqs)
	if err == nil {
		t.Fatal("save-assets failure did not propagate an error")
	}
	if !strings.Contains(err.Error(), "saving assets") {
		t.Errorf("error = %v, want a saving-assets failure", err)
	}
	if rep == nil {
		t.Fatal("report dropped on save failure; served rows lost")
	}
	if rep.Failed != 0 || len(rep.Results) != 1 || rep.Results[0].E2EUs <= 0 {
		t.Errorf("served rows corrupted by save failure: %+v", rep.Results)
	}
	if rep.Error == nil || rep.Error.Code != "save_assets_failed" {
		t.Errorf("report error block = %+v, want code save_assets_failed", rep.Error)
	}
}
