package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dlrmperf"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/perfmodel"
)

// tinyEngineConfig keeps the serve tests fast: eighth-size sweeps and a
// single tiny network per ML-based kernel family, so calibration takes
// fractions of a second instead of minutes.
func tinyEngineConfig() dlrmperf.EngineConfig {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 8
	}
	return dlrmperf.EngineConfig{
		Seed:    17,
		Workers: 4,
		Calib: perfmodel.CalibOptions{
			SweepSizes: sizes, Ensemble: 1,
			MLPConfig: mlp.Config{HiddenLayers: 1, Width: 16, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 10, BatchSize: 64},
		},
	}
}

// wireAssets mirrors the engine's serialized asset schema for
// inspection in tests.
type wireAssets struct {
	Device    string                     `json:"device"`
	Overheads map[string]json.RawMessage `json:"overheads"`
}

// TestWarmStartServeResaveRoundTrip is the -save-assets contract: a
// warm-started run (zero calibrations) that collects a *new* overhead
// DB must still re-save assets for every device that served, and the
// re-saved file must carry the new DB. The pre-fix driver keyed the
// save loop on calibration counts and silently saved nothing here.
func TestWarmStartServeResaveRoundTrip(t *testing.T) {
	// Source engine: calibrate V100 once (tiny options) and export a
	// registry-only asset file — no overhead DBs collected yet.
	src, err := dlrmperf.NewEngineWith(tinyEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	assets, err := src.SaveAssets(dlrmperf.V100)
	if err != nil {
		t.Fatal(err)
	}
	var exported wireAssets
	if err := json.Unmarshal(assets, &exported); err != nil {
		t.Fatal(err)
	}
	if len(exported.Overheads) != 0 {
		t.Fatalf("source assets already carry overhead DBs %v; the round trip needs a fresh one", exported.Overheads)
	}

	dir := t.TempDir()
	assetPath := filepath.Join(dir, "v100.json")
	if err := os.WriteFile(assetPath, assets, 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm-started serve: collects the DLRM_default overhead DB on the
	// fly and re-saves.
	reqs := []wireRequest{
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100},
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100},
	}
	saveDir := filepath.Join(dir, "resave")
	rep, err := serve(serveConfig{
		Engine:     tinyEngineConfig(),
		AssetPaths: []string{assetPath},
		SaveAssets: saveDir,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("warm-started serve failed %d requests: %+v", rep.Failed, rep.Results)
	}
	if len(rep.Calibrations) != 0 {
		t.Fatalf("warm-started serve calibrated: %v", rep.Calibrations)
	}
	if rep.Cache.Hits+rep.Cache.Misses != uint64(rep.Requests) {
		t.Errorf("cache invariant broken: %d+%d != %d requests",
			rep.Cache.Hits, rep.Cache.Misses, rep.Requests)
	}
	if got := rep.Assets.Class("calibrations").Resident; got != 1 {
		t.Errorf("assets report %d resident calibrations, want 1", got)
	}

	resaved, err := os.ReadFile(filepath.Join(saveDir, "V100.json"))
	if err != nil {
		t.Fatalf("warm-started device was not re-saved: %v", err)
	}
	var round wireAssets
	if err := json.Unmarshal(resaved, &round); err != nil {
		t.Fatal(err)
	}
	if round.Device != dlrmperf.V100 {
		t.Errorf("re-saved device = %q", round.Device)
	}
	if _, ok := round.Overheads["DLRM_default"]; !ok {
		t.Fatalf("re-saved assets dropped the newly collected DB; have %v", round.Overheads)
	}

	// Serving again from the re-saved assets reproduces the prediction
	// bit-for-bit without calibrating or re-profiling.
	rep2, err := serve(serveConfig{
		Engine:     tinyEngineConfig(),
		AssetPaths: []string{filepath.Join(saveDir, "V100.json")},
	}, reqs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failed != 0 || len(rep2.Calibrations) != 0 {
		t.Fatalf("second warm start recalibrated or failed: %+v", rep2)
	}
	if rep.Results[0].E2EUs != rep2.Results[0].E2EUs {
		t.Errorf("round-tripped prediction differs: %v vs %v",
			rep.Results[0].E2EUs, rep2.Results[0].E2EUs)
	}
}

// TestServeReportInvariants covers the cold path on a tiny engine: the
// report's cache counters account for every request served, rejected
// requests stay out of them, and the assets block carries all five
// classes.
func TestServeReportInvariants(t *testing.T) {
	reqs := []wireRequest{
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100},
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100}, // duplicate: cache hit
		{Workload: "no_such_model", Batch: 512, Device: dlrmperf.V100},
		// comm on a single-device spec: rejected at engine validation.
		{Workload: "DLRM_default", Batch: 512, Device: dlrmperf.V100, Comm: "pcie"},
	}
	rep, err := serve(serveConfig{Engine: tinyEngineConfig()}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 2 {
		t.Fatalf("failed = %d, want 2 (unknown workload + comm on width 1): %+v", rep.Failed, rep.Results)
	}
	// The unknown workload passes structural validation and fails in
	// compute (a miss); the comm-on-width-1 request is rejected at
	// validation and kept out of the hit/miss counters: every request
	// dispatched is accounted, hits+misses+rejected == requests.
	if rep.Cache.Hits != 1 || rep.Cache.Misses != 2 || rep.Cache.Rejected != 1 {
		t.Errorf("cache = %d/%d/%d hit/miss/rejected, want 1/2/1",
			rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Rejected)
	}
	if rep.Cache.Hits+rep.Cache.Misses+rep.Cache.Rejected != uint64(rep.Requests) {
		t.Errorf("cache invariant broken: %d+%d+%d != %d requests",
			rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Rejected, rep.Requests)
	}
	want := map[string]bool{"calibrations": true, "runs": true, "overheads": true, "graphs": true, "results": true}
	for _, c := range rep.Assets.Classes {
		delete(want, c.Class)
	}
	if len(want) != 0 {
		t.Errorf("assets block missing classes: %v", want)
	}
	if rep.Assets.TotalBytes <= 0 {
		t.Errorf("assets total bytes = %d, want > 0", rep.Assets.TotalBytes)
	}
}
