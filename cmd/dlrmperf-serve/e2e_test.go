package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
)

// TestE2EHTTPServe is the end-to-end smoke CI runs instead of the old
// grep-based report checks: it builds the real binary, starts
// `dlrmperf-serve -listen` on an ephemeral port, serves the checked-in
// mixed single/multi-GPU fixture over the typed client with a
// result-cache hit on the duplicate scenario, provokes 429
// backpressure on the 1-deep admission queue, verifies the /stats
// accounting invariant and /healthz, and finally SIGTERMs the process
// expecting a clean drain (exit 0) with assets re-saved.
func TestE2EHTTPServe(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("drains via SIGTERM; not exercised on windows")
	}
	bin := filepath.Join(t.TempDir(), "dlrmperf-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}

	assetsDir := filepath.Join(t.TempDir(), "assets")
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-fast-calib",
		"-queue", "1",
		"-stream-workers", "1",
		"-save-assets", assetsDir,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server prints "listening on 127.0.0.1:PORT" once bound. The
	// scanner goroutine owns the stderr pipe until EOF; tail() guards
	// the buffer so failure paths can read it race-free, and scanDone
	// orders the pipe's EOF before cmd.Wait below.
	addrCh := make(chan string, 1)
	var tailMu sync.Mutex
	var stderrTail bytes.Buffer
	tail := func() string {
		tailMu.Lock()
		defer tailMu.Unlock()
		return stderrTail.String()
	}
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			tailMu.Lock()
			stderrTail.WriteString(line + "\n")
			tailMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address; stderr:\n%s", tail())
	}

	ctx := context.Background()
	cl := client.New(base)

	// Liveness before any traffic.
	if h, err := cl.Healthz(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v / %v, want ok", h, err)
	}
	scenarios, err := cl.Scenarios(ctx)
	if err != nil || len(scenarios) == 0 {
		t.Fatalf("scenarios = %d names / %v", len(scenarios), err)
	}

	// The checked-in fixture over the client: the batch endpoint blocks
	// for admission (no 429s even on a 1-deep queue) and the duplicate
	// scenario is served from the result cache.
	fixture, err := os.ReadFile(filepath.Join("testdata", "requests.json"))
	if err != nil {
		t.Fatal(err)
	}
	var reqs []serve.Request
	if err := json.Unmarshal(fixture, &reqs); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.PredictBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch: %v\nstderr:\n%s", err, tail())
	}
	if rep.Requests != 3 || rep.Failed != 0 {
		t.Fatalf("fixture report = %d requests / %d failed, want 3/0: %+v", rep.Requests, rep.Failed, rep)
	}
	hit := false
	for _, row := range rep.Results {
		if row.CacheHit {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no cache hit on the duplicate fixture scenario: %+v", rep)
	}

	// A repeat over the single-predict endpoint is a cache hit too.
	row, err := cl.Predict(ctx, serve.Request{Workload: "DLRM_DDP", Batch: 512, Device: "V100"})
	if err != nil || !row.CacheHit || row.Error != "" {
		t.Fatalf("repeat predict = %+v / %v; want a cache hit", row, err)
	}

	// Backpressure: P100 is cold, so its first request parks the single
	// worker in calibration while the 1-deep queue fills; concurrent
	// singles must shed as *ErrBackpressure with a Retry-After hint.
	const burst = 6
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Predict(ctx, serve.Request{Workload: "DLRM_default", Batch: 512, Device: "P100"})
		}(i)
	}
	wg.Wait()
	got429 := 0
	for _, err := range errs {
		var bp *client.ErrBackpressure
		if errors.As(err, &bp) {
			got429++
			if bp.RetryAfter <= 0 {
				t.Errorf("backpressure without a Retry-After hint: %v", bp)
			}
		}
	}
	if got429 == 0 {
		t.Fatalf("no backpressure in a %d-request burst against a busy 1-deep queue: %v", burst, errs)
	}

	// Accounting invariant over everything served so far.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Cache.Hits + st.Cache.Misses + st.Rejected.Total(); got != st.Requests {
		t.Fatalf("stats invariant broken: hits %d + misses %d + rejected %d = %d, requests %d\n%+v",
			st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), got, st.Requests, st)
	}
	if st.Rejected.QueueFull == 0 {
		t.Fatalf("queue-full rejections not counted: %+v", st.Rejected)
	}

	// Clean SIGTERM drain: exit 0, assets re-saved for served devices.
	// Wait for the stderr scanner to hit EOF (process closed its end)
	// before cmd.Wait, which closes the pipe.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone:
	case <-time.After(2 * time.Minute):
		t.Fatalf("server stderr never closed after SIGTERM; stderr:\n%s", tail())
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM drain exited non-zero: %v; stderr:\n%s", err, tail())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("server never exited after SIGTERM; stderr:\n%s", tail())
	}
	if _, err := os.Stat(filepath.Join(assetsDir, "V100.json")); err != nil {
		t.Errorf("drain did not re-save V100 assets: %v", err)
	}
	entries, err := os.ReadDir(assetsDir)
	if err != nil {
		t.Fatalf("assets dir missing after drain: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	t.Logf("drained cleanly; saved assets: %v", names)
}
