package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dlrmperf/internal/serve"
)

// TestE2EHTTPServe is the end-to-end smoke CI runs instead of the old
// grep-based report checks: it builds the real binary, starts
// `dlrmperf-serve -listen` on an ephemeral port, serves the checked-in
// mixed single/multi-GPU fixture over HTTP with a result-cache hit on
// the duplicate scenario, provokes 429 backpressure on the 1-deep
// admission queue, verifies the /stats accounting invariant and
// /healthz, and finally SIGTERMs the process expecting a clean drain
// (exit 0) with assets re-saved.
func TestE2EHTTPServe(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("drains via SIGTERM; not exercised on windows")
	}
	bin := filepath.Join(t.TempDir(), "dlrmperf-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}

	assetsDir := filepath.Join(t.TempDir(), "assets")
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-fast-calib",
		"-queue", "1",
		"-stream-workers", "1",
		"-save-assets", assetsDir,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server prints "listening on 127.0.0.1:PORT" once bound. The
	// scanner goroutine owns the stderr pipe until EOF; tail() guards
	// the buffer so failure paths can read it race-free, and scanDone
	// orders the pipe's EOF before cmd.Wait below.
	addrCh := make(chan string, 1)
	var tailMu sync.Mutex
	var stderrTail bytes.Buffer
	tail := func() string {
		tailMu.Lock()
		defer tailMu.Unlock()
		return stderrTail.String()
	}
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			tailMu.Lock()
			stderrTail.WriteString(line + "\n")
			tailMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address; stderr:\n%s", tail())
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			if err := json.Unmarshal(data, v); err != nil {
				t.Fatalf("parsing %s response %q: %v", path, data, err)
			}
		}
		return resp.StatusCode
	}

	// Liveness before any traffic.
	if code := getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	var scenarios []string
	if code := getJSON("/v1/scenarios", &scenarios); code != http.StatusOK || len(scenarios) == 0 {
		t.Fatalf("/v1/scenarios = %d with %d names", code, len(scenarios))
	}

	// The checked-in fixture over HTTP: the batch endpoint blocks for
	// admission (no 429s even on a 1-deep queue) and the duplicate
	// scenario is served from the result cache.
	fixture, err := os.ReadFile(filepath.Join("testdata", "requests.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/predict/batch", "application/json", bytes.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	repData, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d: %s", resp.StatusCode, repData)
	}
	var rep serve.Report
	if err := json.Unmarshal(repData, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 3 || rep.Failed != 0 {
		t.Fatalf("fixture report = %d requests / %d failed, want 3/0: %s", rep.Requests, rep.Failed, repData)
	}
	hit := false
	for _, row := range rep.Results {
		if row.CacheHit {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no cache hit on the duplicate fixture scenario: %s", repData)
	}

	// A repeat over the single-predict endpoint is a cache hit too.
	resp, err = client.Post(base+"/v1/predict", "application/json",
		strings.NewReader(`{"workload":"DLRM_DDP","batch":512,"device":"V100"}`))
	if err != nil {
		t.Fatal(err)
	}
	var row serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !row.CacheHit || row.Error != "" {
		t.Fatalf("repeat predict = %d, row %+v; want 200 with a cache hit", resp.StatusCode, row)
	}

	// Backpressure: P100 is cold, so its first request parks the single
	// worker in calibration while the 1-deep queue fills; concurrent
	// singles must shed with 429 + Retry-After.
	const burst = 6
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/predict", "application/json",
				strings.NewReader(`{"workload":"DLRM_default","batch":512,"device":"P100"}`))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	got429 := 0
	for i, c := range codes {
		if c == http.StatusTooManyRequests {
			got429++
			if retryAfter[i] == "" {
				t.Error("429 without a Retry-After header")
			}
		}
	}
	if got429 == 0 {
		t.Fatalf("no 429 in a %d-request burst against a busy 1-deep queue: codes %v", burst, codes)
	}

	// Accounting invariant over everything served so far.
	var st serve.Stats
	if code := getJSON("/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats = %d, want 200", code)
	}
	if got := st.Cache.Hits + st.Cache.Misses + st.Rejected.Total(); got != st.Requests {
		t.Fatalf("stats invariant broken: hits %d + misses %d + rejected %d = %d, requests %d\n%+v",
			st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), got, st.Requests, st)
	}
	if st.Rejected.QueueFull == 0 {
		t.Fatalf("queue-full rejections not counted: %+v", st.Rejected)
	}

	// Clean SIGTERM drain: exit 0, assets re-saved for served devices.
	// Wait for the stderr scanner to hit EOF (process closed its end)
	// before cmd.Wait, which closes the pipe.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone:
	case <-time.After(2 * time.Minute):
		t.Fatalf("server stderr never closed after SIGTERM; stderr:\n%s", tail())
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM drain exited non-zero: %v; stderr:\n%s", err, tail())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("server never exited after SIGTERM; stderr:\n%s", tail())
	}
	if _, err := os.Stat(filepath.Join(assetsDir, "V100.json")); err != nil {
		t.Errorf("drain did not re-save V100 assets: %v", err)
	}
	entries, err := os.ReadDir(assetsDir)
	if err != nil {
		t.Fatalf("assets dir missing after drain: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	t.Logf("drained cleanly; saved assets: %v", names)
}
