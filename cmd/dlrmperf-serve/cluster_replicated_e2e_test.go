package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/cluster"
	"dlrmperf/internal/serve"
)

// pickPorts reserves n distinct loopback ports by binding and
// releasing them — the replicated coordinators need each other's URL
// on the command line before either has started listening.
func pickPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// statsOf fetches one coordinator's aggregated cluster stats.
func statsOf(t *testing.T, cl *client.Client) cluster.Stats {
	t.Helper()
	var st cluster.Stats
	if err := cl.StatsInto(context.Background(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitCond polls cond with a long cross-process deadline.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestE2EClusterReplicated is the replicated-control-plane end-to-end:
// 2 coordinators in a peer group + 2 workers registered with both.
// It proves the two tentpole properties across real process
// boundaries:
//
//  1. Killing the leader coordinator mid-run loses no cached results —
//     a result fetched through the leader is a LOCAL cache hit on the
//     survivor (peer_results_installed observed before the kill, so
//     the hit is replication, not a fresh route).
//  2. Killing the worker that owns a calibrated device hands its
//     vaulted assets to the new rendezvous home BEFORE traffic lands
//     there — the survivor serves the next request warm and its
//     calibration ledger never grows.
func TestE2EClusterReplicated(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("drains via signals; not exercised on windows")
	}
	bin := filepath.Join(t.TempDir(), "dlrmperf-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}

	// Symmetric peer wiring needs both URLs before either process
	// exists, so the ports are reserved up front.
	ports := pickPorts(t, 2)
	urlA, urlB := "http://"+ports[0], "http://"+ports[1]
	coordA := startServeProc(t, "coordA", bin,
		"-coordinator", "-listen", ports[0], "-peers", urlB,
		"-liveness", "3s", "-heartbeat", "200ms")
	coordB := startServeProc(t, "coordB", bin,
		"-coordinator", "-listen", ports[1], "-peers", urlA,
		"-liveness", "3s", "-heartbeat", "200ms")
	coords := map[string]*serveProc{urlA: coordA, urlB: coordB}

	// Workers register (and push calibration assets) to BOTH
	// coordinators, so routing never depends on registration gossip.
	register := urlA + "," + urlB
	w1 := startServeProc(t, "worker1", bin,
		"-listen", "127.0.0.1:0", "-fast-calib",
		"-register", register, "-heartbeat", "200ms")
	w2 := startServeProc(t, "worker2", bin,
		"-listen", "127.0.0.1:0", "-fast-calib",
		"-register", register, "-heartbeat", "200ms")
	workers := map[string]*serveProc{w1.base(): w1, w2.base(): w2}

	ctx := context.Background()
	clA, clB := client.New(urlA), client.New(urlB)
	waitForWorkers(t, clA, coordA, 2)
	waitForWorkers(t, clB, coordB, 2)

	// The peer probes elect one leader; both sides must agree.
	var leaderURL string
	waitCond(t, "a consistent leader election", func() bool {
		stA, stB := statsOf(t, clA), statsOf(t, clB)
		if stA.Lease == nil || stB.Lease == nil || stA.Lease.Leader != stB.Lease.Leader {
			return false
		}
		leaderURL = stA.Lease.Leader
		return true
	})
	leader := coords[leaderURL]
	survivorURL := urlA
	if leaderURL == urlA {
		survivorURL = urlB
	}
	clLeader, clSurvivor := client.New(leaderURL), client.New(survivorURL)
	t.Logf("leader %s, survivor %s", leaderURL, survivorURL)

	// Phase 1: fetch through the leader, wait for the gossiped result
	// to land on the survivor (counted, not probed — a probe query
	// would seed the survivor's cache by routing and prove nothing),
	// then SIGKILL the leader.
	fetched := serve.Request{Workload: "DLRM_DDP", Batch: 1024, Device: "V100"}
	row, err := clLeader.Predict(ctx, fetched)
	if err != nil || row.Error != "" {
		t.Fatalf("fetch via leader = %+v / %v\nleader tail:\n%s", row, err, leader.tail())
	}
	waitCond(t, "result gossip to land on the survivor", func() bool {
		return statsOf(t, clSurvivor).Coordinator.PeerResultsInstalled >= 1
	})
	if err := leader.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.waitExit(t, 30*time.Second)

	row, err = clSurvivor.Predict(ctx, fetched)
	if err != nil || row.Error != "" || !row.CacheHit {
		t.Fatalf("re-query on survivor = %+v / %v, want a cache hit", row, err)
	}
	st := statsOf(t, clSurvivor)
	if st.Coordinator.LocalCacheHits == 0 {
		t.Fatalf("survivor answered from a worker, not its replicated cache: %+v", st.Coordinator)
	}
	// With the leader dead past the liveness window, the survivor must
	// take the lease.
	waitCond(t, "survivor to take the lease", func() bool {
		ls := statsOf(t, clSurvivor).Lease
		return ls != nil && ls.IsLeader
	})

	// Phase 2: warm hand-off. The V100 fetch above calibrated the
	// device on its rendezvous home, whose heartbeat pushes the
	// exported assets into both vaults. Find the home from the
	// aggregated ledger, wait for its assets to reach the survivor
	// coordinator's vault, then SIGKILL it.
	var victimID string
	waitCond(t, "V100 assets to reach the survivor's vault", func() bool {
		st := statsOf(t, clSurvivor)
		for id, devs := range st.Calibrations {
			if devs["V100"] > 0 {
				victimID = id
			}
		}
		v, ok := st.Vault["V100"]
		return ok && victimID != "" && v.Worker == victimID
	})
	victim := workers[victimID]
	if victim == nil {
		t.Fatalf("V100 owner %q is not one of the started workers", victimID)
	}
	wSurvivor := w1
	if victim == w1 {
		wSurvivor = w2
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.waitExit(t, 30*time.Second)

	// A fresh V100 fingerprint routes to the surviving worker; the
	// coordinator must install the dead home's assets there first.
	row, err = clSurvivor.Predict(ctx, serve.Request{Workload: "DLRM_DDP", Batch: 4096, Device: "V100"})
	if err != nil || row.Error != "" || row.E2EUs <= 0 {
		t.Fatalf("failover predict = %+v / %v\ncoordinator tail:\n%s", row, err, coords[survivorURL].tail())
	}
	st = statsOf(t, clSurvivor)
	if st.Coordinator.Migrations == 0 {
		t.Fatalf("no warm hand-off counted after the owner died: %+v\ntail:\n%s",
			st.Coordinator, coords[survivorURL].tail())
	}
	if v := st.Vault["V100"]; v.InstalledOn != wSurvivor.base() {
		t.Fatalf("vault = %+v, want V100 installed on %s", v, wSurvivor.base())
	}
	// The warm hand-off's whole point: the new home's calibration
	// ledger did NOT grow — it serves V100 from the installed assets.
	if runs := st.Calibrations[wSurvivor.base()]["V100"]; runs != 0 {
		t.Fatalf("surviving worker calibrated V100 %d times after a warm hand-off, want 0", runs)
	}
	wst, err := client.New(wSurvivor.base()).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wst.AssetInstalls == 0 {
		t.Fatal("surviving worker reports no asset installs after the hand-off")
	}
	// Accounting stays exact across both kills: the attempt burned on
	// the dead worker is a counted rejection, not a leak.
	if st.Rejected.WorkerFailed == 0 {
		t.Fatalf("worker_failed = 0 after killing the V100 owner: %+v", st.Rejected)
	}
	if got := st.Accounted(); got != st.Requests {
		t.Fatalf("cluster invariant broken after both kills: accounted %d, requests %d\n%s",
			got, st.Requests, statsDump(st))
	}

	// Clean shutdown: SIGTERM the surviving coordinator; the drain
	// propagates to the surviving registered worker. Both exit 0.
	if err := coords[survivorURL].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coords[survivorURL].waitExit(t, 2*time.Minute); err != nil {
		t.Fatalf("survivor coordinator drain exited non-zero: %v; tail:\n%s", err, coords[survivorURL].tail())
	}
	if err := wSurvivor.waitExit(t, 2*time.Minute); err != nil {
		t.Fatalf("surviving worker did not drain on propagation: %v; tail:\n%s", err, wSurvivor.tail())
	}
	if !strings.Contains(wSurvivor.tail(), "draining") {
		t.Errorf("surviving worker never logged its drain; tail:\n%s", wSurvivor.tail())
	}
}

func statsDump(st cluster.Stats) string {
	return fmt.Sprintf("hits %d + misses %d + rejected %+v, requests %d",
		st.Cache.Hits, st.Cache.Misses, st.Rejected, st.Requests)
}
