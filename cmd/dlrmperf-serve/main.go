// Command dlrmperf-serve is the prediction service driver. It runs in
// three modes over the same serving pipeline (internal/serve +
// internal/cluster): a long-lived async HTTP server (optionally
// self-registering as a cluster worker), a cluster coordinator that
// shards traffic across such workers, and a one-shot batch runner.
//
//	dlrmperf-serve -listen :8080                   # HTTP service
//	dlrmperf-serve -in requests.json -o report.json # one-shot batch
//	dlrmperf-serve -in requests.json -assets v100.json,p100.json
//	dlrmperf-serve -gen 24 | dlrmperf-serve -save-assets assets/
//
//	dlrmperf-serve -coordinator -listen :9000       # cluster coordinator
//	dlrmperf-serve -listen :8081 -register http://host:9000  # worker
//
// A coordinator routes each request to a worker by rendezvous hashing
// on its device (one worker calibrates each device; its pinned assets
// stay hot), retries a dead worker once on the next-ranked candidate,
// re-exports the whole worker HTTP surface, and aggregates /stats
// cluster-wide. Workers join via -register (heartbeat self-
// registration) or the coordinator's -static-workers list. SIGTERM on
// the coordinator drains in-flight routes, then propagates the drain
// to the workers that registered with it.
//
// Both modes serve through one concurrent engine — each device
// calibrates at most once, lazily, and repeated scenarios are served
// from the engine's result cache — behind a bounded admission queue
// with backpressure. In HTTP mode the endpoints are:
//
//	POST /v1/predict        one request -> one result row; 429 + Retry-After when the queue is full
//	POST /v1/predict/batch  request list -> full report (admission blocks instead of shedding)
//	GET  /v1/scenarios      registered scenario names
//	GET  /healthz           liveness (503 while draining)
//	GET  /stats             admission/stream/cache/asset counters
//
// With -pprof the net/http/pprof surface is additionally mounted under
// /debug/pprof/ (worker and coordinator modes alike) for profiling a
// live serving process; it is never exposed without the flag.
//
// SIGTERM/SIGINT drain gracefully: in-flight requests finish, new
// admissions are rejected, and -save-assets (if set) re-saves every
// device that served before the process exits.
//
// The request schema is shared by the file fixture and both POST
// bodies; each entry names a built-in workload or a registered
// scenario, with an optional execution width and per-request deadline:
//
//	[
//	  {"workload": "DLRM_default", "batch": 2048, "device": "V100"},
//	  {"workload": "DLRM_MLPerf",  "batch": 1024, "device": "P100", "shared": true},
//	  {"scenario": "dlrm-criteo",  "batch": 2048, "device": "V100", "gpus": 4},
//	  {"scenario": "dlrm-uniform-2gpu", "device": "V100", "comm": "pcie", "timeout_ms": 500}
//	]
//
// Multi-GPU entries (gpus >= 2, or a *-Ngpu scenario) run the
// hybrid-parallel path: dense layers data-parallel, embedding tables
// sharded by the greedy planner, collectives priced by the named comm
// model.
//
// -gen N skips serving and instead writes a round-robin request list
// covering every workload and device, for smoke tests and benchmarks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dlrmperf"
	"dlrmperf/internal/cluster"
	"dlrmperf/internal/serve"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmperf-serve:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "-", "request JSON path (- for stdin)")
	out := flag.String("o", "-", "report JSON path (- for stdout)")
	seed := flag.Uint64("seed", 2022, "engine seed")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	assets := flag.String("assets", "", "comma-separated warm-start asset files from a previous -save-assets run")
	saveAssets := flag.String("save-assets", "", "directory to write per-device asset files after serving")
	gen := flag.Int("gen", 0, "instead of serving, emit N round-robin requests covering every workload and device")
	listScenarios := flag.Bool("scenarios", false, "list the registered scenario names and exit")
	listen := flag.String("listen", "", "serve HTTP on this address (e.g. :8080) instead of running a one-shot batch")
	queueDepth := flag.Int("queue", 64, "admission queue depth; a full queue rejects POST /v1/predict with 429")
	streamWorkers := flag.Int("stream-workers", 0, "concurrent request executions (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none); a request's timeout_ms can only tighten it")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After floor on 429/503 responses; the served hint adapts to the observed drain rate")
	maxRetryAfter := flag.Duration("max-retry-after", 30*time.Second, "ceiling on the adaptive Retry-After hint")
	tenantQueueCap := flag.Int("tenant-queue-cap", 0, "per-tenant share of the admission queue; a tenant over its cap is rejected tenant_limited (0 = half of -queue)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "HTTP shutdown grace period after SIGTERM")
	fastCalib := flag.Bool("fast-calib", false, "low-fidelity calibration (eighth-size sweeps, tiny networks) for smoke tests and CI")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator on -listen, sharding requests across workers instead of serving an engine")
	staticWorkers := flag.String("static-workers", "", "comma-separated worker base URLs the coordinator always knows about (no heartbeat required)")
	peers := flag.String("peers", "", "comma-separated base URLs of the OTHER coordinators in a replicated control plane; enables the leader lease, registration forwarding, and result/asset gossip")
	register := flag.String("register", "", "comma-separated coordinator base URLs this worker self-registers (and heartbeats, and pushes calibration assets) with; also enables the worker's POST /v1/drain")
	advertise := flag.String("advertise", "", "base URL this worker advertises when registering (default http://<listen address>)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker re-registration interval under -register")
	liveness := flag.Duration("liveness", cluster.DefaultLiveness, "coordinator liveness window: a registered worker missing heartbeats this long stops being routed to")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP listener (live profiling of a serving process)")
	flag.Parse()

	if *listScenarios {
		for _, name := range dlrmperf.Scenarios() {
			fmt.Println(name)
		}
		return
	}
	if *gen > 0 {
		generate(*gen, *out)
		return
	}

	if *coordinator {
		if *listen == "" {
			fail(fmt.Errorf("-coordinator requires -listen"))
		}
		err := runCoordinator(coordinatorConfig{
			Addr:          *listen,
			StaticWorkers: splitPaths(*staticWorkers),
			Peers:         splitPaths(*peers),
			Advertise:     *advertise,
			Liveness:      *liveness,
			RetryAfter:    *retryAfter,
			MaxRetryAfter: *maxRetryAfter,
			Heartbeat:     *heartbeat,
			DrainGrace:    *drainGrace,
			Seed:          *seed,
			Pprof:         *pprofOn,
		})
		if err != nil {
			fail(err)
		}
		return
	}

	cfg := serveConfig{
		Engine:     engineConfig(*seed, *workers, *fastCalib),
		AssetPaths: splitPaths(*assets),
		SaveAssets: *saveAssets,
		Stream: serve.Config{
			QueueDepth:     *queueDepth,
			TenantQueueCap: *tenantQueueCap,
			Workers:        *streamWorkers,
			RequestTimeout: *timeout,
			RetryAfter:     *retryAfter,
			MaxRetryAfter:  *maxRetryAfter,
		},
		DrainGrace: *drainGrace,
		Register:   splitPaths(*register),
		Advertise:  *advertise,
		Heartbeat:  *heartbeat,
		Pprof:      *pprofOn,
	}

	if *listen != "" {
		if err := listenAndServe(cfg, *listen); err != nil {
			fail(err)
		}
		return
	}

	reqs, err := readRequests(*in)
	if err != nil {
		fail(err)
	}
	rep, serveErr := serveOnce(cfg, reqs)
	// The report is written even when post-serve work failed, so the
	// rows that did serve are never lost; the failure still reaches the
	// exit code below.
	if rep != nil {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := writeOut(*out, append(data, '\n')); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "served %d requests (%d failed) in %.1f ms, calibrations: %v, cache %d/%d hit/miss\n",
			rep.Requests, rep.Failed, rep.ElapsedMs, rep.Calibrations, rep.Cache.Hits, rep.Cache.Misses)
	}
	if serveErr != nil {
		fail(serveErr)
	}
	if rep.Error != nil {
		fail(fmt.Errorf("%s: %s", rep.Error.Code, rep.Error.Message))
	}
}

// serveConfig parameterizes one serve run (the flag surface, testable).
type serveConfig struct {
	Engine     dlrmperf.EngineConfig
	AssetPaths []string
	// SaveAssets names a directory to write per-device asset files into
	// after serving ("" disables).
	SaveAssets string
	// Stream configures the admission queue and worker pool.
	Stream serve.Config
	// DrainGrace bounds the HTTP shutdown wait after a signal.
	DrainGrace time.Duration
	// Register lists the cluster coordinators this worker self-registers
	// with (empty disables) — every one of them, so a replicated control
	// plane keeps routing to this worker when its leader dies; it also
	// enables the worker's POST /v1/drain endpoint so a coordinator can
	// propagate shutdown, and heartbeat-time calibration-asset pushes
	// into the coordinators' replicated vaults.
	Register []string
	// Advertise is the base URL sent on registration (default derived
	// from the bound listener).
	Advertise string
	// Heartbeat is the re-registration interval.
	Heartbeat time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling surface is never exposed by default).
	Pprof bool
}

// engineConfig assembles the engine options of a run. fast selects the
// low-fidelity calibration preset (dlrmperf.FastCalibConfig) used by
// smoke tests and CI.
func engineConfig(seed uint64, workers int, fast bool) dlrmperf.EngineConfig {
	if fast {
		return dlrmperf.FastCalibConfig(seed, workers)
	}
	return dlrmperf.EngineConfig{Seed: seed, Workers: workers}
}

func splitPaths(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newEngine builds the engine and applies warm-start asset files.
func newEngine(cfg serveConfig) (*dlrmperf.Engine, error) {
	eng, err := dlrmperf.NewEngineWith(cfg.Engine)
	if err != nil {
		return nil, err
	}
	for _, path := range cfg.AssetPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := eng.LoadAssets(data); err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
	}
	return eng, nil
}

// newServer wires the engine behind the admission pipeline.
func newServer(cfg serveConfig, eng *dlrmperf.Engine) *serve.Server {
	sc := cfg.Stream
	sc.Backend = eng
	return serve.New(sc)
}

// serveOnce runs the whole request batch through the serving pipeline
// and assembles the report, optionally warm-starting from asset files
// and re-saving assets afterwards. A re-save failure is reported in
// the returned report's error block AND as a non-nil error, so the
// driver exits non-zero instead of silently dropping the assets.
func serveOnce(cfg serveConfig, reqs []serve.Request) (*serve.Report, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	srv := newServer(cfg, eng)
	rep := srv.Run(context.Background(), reqs)
	srv.Drain()
	if err := saveAssetsFor(eng, cfg.SaveAssets, srv.ServedDevices()); err != nil {
		err = fmt.Errorf("saving assets: %w", err)
		if rep.Error == nil {
			rep.Error = &serve.ReportError{Code: "save_assets_failed", Message: err.Error()}
		}
		return rep, err
	}
	return rep, nil
}

// saveAssetsFor writes one asset file per served device into dir.
// Warm-started devices are included: the served set, not calibration
// counts, is the criterion, so overhead DBs collected this run are
// never silently dropped.
func saveAssetsFor(eng *dlrmperf.Engine, dir string, devices []string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range devices {
		data, err := eng.SaveAssets(d)
		if err != nil {
			return err
		}
		name := strings.ReplaceAll(d, " ", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// listenAndServe runs the HTTP service until a SIGTERM/SIGINT (or,
// when registered with a coordinator, a propagated POST /v1/drain),
// then drains gracefully: the listener stops, in-flight requests
// finish, new admissions are rejected, and assets are re-saved if
// requested. A failed asset re-save propagates to the exit code. With
// cfg.Register set the worker heartbeats its advertised URL to the
// coordinator so it joins (and stays in) the cluster's routing set.
func listenAndServe(cfg serveConfig, addr string) error {
	eng, err := newEngine(cfg)
	if err != nil {
		return err
	}
	srv := newServer(cfg, eng)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dlrmperf-serve: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	handler := http.Handler(srv.Handler())
	stopHeartbeat := func() {}
	if len(cfg.Register) > 0 {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		// The coordinator-propagated drain: acknowledge, then feed the
		// same signal path SIGTERM takes so there is exactly one
		// shutdown sequence.
		mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, _ *http.Request) {
			serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "draining"})
			select {
			case sig <- syscall.SIGTERM:
			default: // a shutdown is already in flight
			}
		})
		handler = mux

		advertise := cfg.Advertise
		if advertise == "" {
			advertise = "http://" + advertiseHostPort(ln, cfg.Register[0])
		}
		hbCtx, hbCancel := context.WithCancel(context.Background())
		defer hbCancel()
		// The heartbeat reaches EVERY listed coordinator and carries
		// asset pushes: each calibrated device's exported assets land in
		// the coordinators' replicated vaults, so if this worker dies its
		// devices' new homes are handed them instead of recalibrating.
		stopHeartbeat = cluster.HeartbeatAssets(hbCtx, nil, cfg.Register, advertise, advertise, cfg.Heartbeat, eng)
		defer stopHeartbeat()
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: registering with %s as %s\n", strings.Join(cfg.Register, ","), advertise)
	}

	if cfg.Pprof {
		handler = withPprof(handler)
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: pprof exposed at /debug/pprof/\n")
	}

	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: %v: draining\n", s)
	}

	// Stop heartbeating BEFORE draining: each beat re-registers and
	// lifts any failure quarantine at the coordinator, so a worker that
	// kept beating through its (up to -drain-grace long) drain would
	// keep re-attracting traffic it is about to 503.
	stopHeartbeat()

	// Drain order: the admission queue first (new submits reject, every
	// admitted request finishes and is delivered), then the HTTP server
	// (handlers are now unblocked, Shutdown just closes the listener and
	// idle connections).
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainGrace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: http shutdown: %v\n", err)
	}

	if err := saveAssetsFor(eng, cfg.SaveAssets, srv.ServedDevices()); err != nil {
		return fmt.Errorf("saving assets: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"dlrmperf-serve: drained; %d requests, cache %d/%d hit/miss, rejected %d validation / %d queue-full / %d tenant-limited / %d draining, canceled %d\n",
		st.Requests, st.Cache.Hits, st.Cache.Misses,
		st.Rejected.Validation, st.Rejected.QueueFull, st.Rejected.TenantLimited, st.Rejected.Draining, st.Canceled)
	return nil
}

// advertiseHostPort derives the default self-registration address from
// the bound listener. A listener on a specific address advertises it
// verbatim; a wildcard listener (`-listen :8081` binds `[::]` or
// `0.0.0.0`, which other hosts cannot dial) advertises the local IP
// the routing table picks for reaching the coordinator (a connectless
// UDP "dial" — no packets are sent), falling back to loopback.
func advertiseHostPort(ln net.Listener, register string) string {
	addr, ok := ln.Addr().(*net.TCPAddr)
	if !ok {
		return ln.Addr().String()
	}
	if !addr.IP.IsUnspecified() {
		return addr.String()
	}
	host := "127.0.0.1"
	if u, err := url.Parse(register); err == nil && u.Host != "" {
		target := u.Host
		if u.Port() == "" {
			target = net.JoinHostPort(target, "80")
		}
		if conn, err := net.Dial("udp", target); err == nil {
			if local, ok := conn.LocalAddr().(*net.UDPAddr); ok {
				host = local.IP.String()
			}
			conn.Close()
		}
	}
	return net.JoinHostPort(host, fmt.Sprintf("%d", addr.Port))
}

// withPprof mounts the net/http/pprof surface in front of a handler:
// /debug/pprof/ routes to the profiler, everything else passes through.
// Explicit registration (instead of the package's init-time
// DefaultServeMux side effect) keeps the surface off every mux that
// did not opt in.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", next)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// coordinatorConfig parameterizes a coordinator run.
type coordinatorConfig struct {
	Addr          string
	StaticWorkers []string
	// Peers lists the other coordinators of a replicated control plane;
	// Advertise is the base URL peers reach this coordinator at
	// (default derived from the bound listener).
	Peers         []string
	Advertise     string
	Liveness      time.Duration
	RetryAfter    time.Duration
	MaxRetryAfter time.Duration
	// Heartbeat is the peer-probe interval under Peers.
	Heartbeat  time.Duration
	DrainGrace time.Duration
	Seed       uint64
	Pprof      bool
}

// runCoordinator serves the cluster coordinator until SIGTERM/SIGINT,
// then drains: in-flight routes finish, and the drain is propagated to
// the workers that registered with this coordinator. The engine
// behind it is cache-only — it never calibrates; it just lends its
// fingerprint result cache to the pass-through, so repeats of an
// identical scenario are answered without a worker round trip. With
// Peers set the coordinator joins a replicated control plane: a
// leader lease over the peer set, registrations forwarded through the
// leader, and result/asset state gossiped so any surviving
// coordinator routes warm after this one dies.
func runCoordinator(cfg coordinatorConfig) error {
	reg := cluster.NewRegistry(cfg.Liveness)
	for _, u := range cfg.StaticWorkers {
		reg.AddStatic(u)
	}
	cacheEng, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: cfg.Seed})
	if err != nil {
		return err
	}

	// Listen before constructing the coordinator: with peers, the self
	// URL the lease ranks by must name the ACTUAL bound address (a :0
	// listener only knows it after Listen).
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	self := cfg.Advertise
	if self == "" && len(cfg.Peers) > 0 {
		self = "http://" + advertiseHostPort(ln, cfg.Peers[0])
	}
	coord := cluster.New(cluster.Config{
		Registry:      reg,
		Cache:         cacheEng,
		RetryAfter:    cfg.RetryAfter,
		MaxRetryAfter: cfg.MaxRetryAfter,
		Self:          self,
		Peers:         cfg.Peers,
		LeaseTTL:      cfg.Liveness,
	})

	fmt.Fprintf(os.Stderr, "dlrmperf-serve: coordinator listening on %s (%d static workers, liveness %s)\n",
		ln.Addr(), len(cfg.StaticWorkers), reg.TTL())
	stopProbes := func() {}
	if len(cfg.Peers) > 0 {
		probeCtx, probeCancel := context.WithCancel(context.Background())
		defer probeCancel()
		stopProbes = coord.StartPeerProbes(probeCtx, cfg.Heartbeat)
		defer stopProbes()
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: coordinator %s replicating with peers %s\n", self, strings.Join(cfg.Peers, ","))
	}
	handler := http.Handler(coord.Handler())
	if cfg.Pprof {
		handler = withPprof(handler)
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: pprof exposed at /debug/pprof/\n")
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: coordinator %v: draining\n", s)
	}

	// Drain order mirrors the worker: peer probes stop (this
	// coordinator stops refreshing its own view; peers age it out of
	// theirs via /healthz turning "draining"), routes drain (new
	// admissions get 503 while in-flight ones finish on their workers),
	// the drain propagates to owned workers, then the HTTP server closes.
	stopProbes()
	coord.Drain(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainGrace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dlrmperf-serve: coordinator http shutdown: %v\n", err)
	}
	st := coord.Stats(context.Background())
	fmt.Fprintf(os.Stderr,
		"dlrmperf-serve: coordinator drained; %d received (%d local cache hits), cluster %d requests, cache %d/%d hit/miss, rejected %d (worker_failed %d)\n",
		st.Coordinator.Received, st.Coordinator.LocalCacheHits, st.Requests,
		st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), st.Rejected.WorkerFailed)
	return nil
}

// generate writes a round-robin request list covering every workload on
// every device across a spread of batch sizes.
func generate(n int, out string) {
	batches := []int64{512, 1024, 2048, 4096}
	var reqs []serve.Request
	devices := dlrmperf.Devices()
	workloads := dlrmperf.Workloads()
	for i := 0; i < n; i++ {
		reqs = append(reqs, serve.Request{
			Workload: workloads[i%len(workloads)],
			Device:   devices[(i/len(workloads))%len(devices)],
			Batch:    batches[(i/(len(workloads)*len(devices)))%len(batches)],
		})
	}
	data, err := json.MarshalIndent(reqs, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := writeOut(out, append(data, '\n')); err != nil {
		fail(err)
	}
}

func readRequests(path string) ([]serve.Request, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var reqs []serve.Request
	if err := json.Unmarshal(data, &reqs); err != nil {
		return nil, fmt.Errorf("parsing requests: %w", err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no requests in %s", path)
	}
	return reqs, nil
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
