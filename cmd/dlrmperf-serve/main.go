// Command dlrmperf-serve is the batched multi-device prediction driver:
// it reads a JSON list of scenario prediction requests, serves them all
// through one concurrent engine — each device calibrates at most once,
// lazily, and repeated scenarios are served from the engine's result
// cache — and emits a JSON report. It is the "calibrate once per
// device, predict anywhere at scale" scenario of the paper run as a
// single heavy-traffic batch, extended to the §VI multi-GPU future
// work.
//
// Usage:
//
//	dlrmperf-serve -in requests.json -o report.json
//	dlrmperf-serve -in requests.json -assets v100.json,p100.json
//	dlrmperf-serve -gen 24 | dlrmperf-serve -save-assets assets/
//
// The request file is a JSON array; each entry names either a built-in
// workload or a registered scenario, with an optional execution width:
//
//	[
//	  {"workload": "DLRM_default", "batch": 2048, "device": "V100"},
//	  {"workload": "DLRM_MLPerf",  "batch": 1024, "device": "P100", "shared": true},
//	  {"scenario": "dlrm-criteo",  "batch": 2048, "device": "V100", "gpus": 4},
//	  {"scenario": "dlrm-uniform-2gpu", "device": "V100", "comm": "pcie"}
//	]
//
// Multi-GPU entries (gpus >= 2, or a *-Ngpu scenario) run the
// hybrid-parallel path: dense layers data-parallel, embedding tables
// sharded by the greedy planner, collectives priced by the named comm
// model. The report carries per-request scaling efficiency and the
// engine's cache hit/miss counters.
//
// -gen N skips serving and instead writes a round-robin request list
// covering every workload and device, for smoke tests and benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dlrmperf"
)

// wireRequest is the on-disk request format.
type wireRequest struct {
	Workload string `json:"workload,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Batch    int64  `json:"batch,omitempty"`
	Device   string `json:"device"`
	GPUs     int    `json:"gpus,omitempty"`
	Comm     string `json:"comm,omitempty"`
	Shared   bool   `json:"shared,omitempty"`
}

// wireResult is one row of the report.
type wireResult struct {
	wireRequest
	E2EUs             float64 `json:"e2e_us,omitempty"`
	ActiveUs          float64 `json:"active_us,omitempty"`
	CPUUs             float64 `json:"cpu_us,omitempty"`
	GPUsUsed          int     `json:"gpus_used,omitempty"`
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	AllReduceUs       float64 `json:"allreduce_us,omitempty"`
	AllToAllUs        float64 `json:"alltoall_us,omitempty"`
	ShardImbalance    float64 `json:"shard_imbalance,omitempty"`
	CacheHit          bool    `json:"cache_hit,omitempty"`
	Error             string  `json:"error,omitempty"`
}

// reportError is the structured failure entry emitted when the whole
// batch fails (paired with a non-zero exit).
type reportError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// cacheStats mirrors the engine's prediction result cache counters.
// hits + misses equals the requests the engine served; rejected counts
// requests the engine refused at validation.
type cacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Rejected uint64 `json:"rejected"`
}

// report is the full output document.
type report struct {
	Results      []wireResult        `json:"results"`
	Requests     int                 `json:"requests"`
	Failed       int                 `json:"failed"`
	ElapsedMs    float64             `json:"elapsed_ms"`
	Calibrations map[string]int      `json:"calibrations"`
	Cache        cacheStats          `json:"cache"`
	Assets       dlrmperf.AssetStats `json:"assets"`
	Error        *reportError        `json:"error,omitempty"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmperf-serve:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "-", "request JSON path (- for stdin)")
	out := flag.String("o", "-", "report JSON path (- for stdout)")
	seed := flag.Uint64("seed", 2022, "engine seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	assets := flag.String("assets", "", "comma-separated warm-start asset files from a previous -save-assets run")
	saveAssets := flag.String("save-assets", "", "directory to write per-device asset files after serving")
	gen := flag.Int("gen", 0, "instead of serving, emit N round-robin requests covering every workload and device")
	listScenarios := flag.Bool("scenarios", false, "list the registered scenario names and exit")
	flag.Parse()

	if *listScenarios {
		for _, name := range dlrmperf.Scenarios() {
			fmt.Println(name)
		}
		return
	}
	if *gen > 0 {
		generate(*gen, *out)
		return
	}

	reqs, err := readRequests(*in)
	if err != nil {
		fail(err)
	}
	rep, err := serve(serveConfig{
		Engine:     dlrmperf.EngineConfig{Seed: *seed, Workers: *workers},
		AssetPaths: splitPaths(*assets),
		SaveAssets: *saveAssets,
	}, reqs)
	if err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := writeOut(*out, append(data, '\n')); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "served %d requests (%d failed) in %.1f ms, calibrations: %v, cache %d/%d hit/miss\n",
		rep.Requests, rep.Failed, rep.ElapsedMs, rep.Calibrations, rep.Cache.Hits, rep.Cache.Misses)
	if rep.Error != nil {
		fail(fmt.Errorf("%s: %s", rep.Error.Code, rep.Error.Message))
	}
}

// serveConfig parameterizes one serve run (the flag surface, testable).
type serveConfig struct {
	Engine     dlrmperf.EngineConfig
	AssetPaths []string
	// SaveAssets names a directory to write per-device asset files into
	// after serving ("" disables).
	SaveAssets string
}

func splitPaths(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serve runs the whole request batch through one engine and assembles
// the report, optionally warm-starting from asset files and re-saving
// assets afterwards.
func serve(cfg serveConfig, reqs []wireRequest) (*report, error) {
	eng, err := dlrmperf.NewEngineWith(cfg.Engine)
	if err != nil {
		return nil, err
	}
	for _, path := range cfg.AssetPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := eng.LoadAssets(data); err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
	}

	preqs := make([]dlrmperf.PredictRequest, len(reqs))
	for i, r := range reqs {
		preqs[i] = dlrmperf.PredictRequest{
			Workload: r.Workload, Scenario: r.Scenario, Batch: r.Batch,
			Device: r.Device, GPUs: r.GPUs, Comm: r.Comm, SharedOverheads: r.Shared,
		}
	}
	start := time.Now()
	results := eng.PredictBatch(preqs)
	elapsed := time.Since(start)

	rep := &report{
		Requests:     len(reqs),
		ElapsedMs:    float64(elapsed.Microseconds()) / 1000,
		Calibrations: map[string]int{},
	}
	// served collects every device that successfully served at least one
	// request — the set whose assets are worth saving. Keying the save
	// loop on calibration counts would silently skip warm-started
	// devices, losing any overhead DBs collected this run.
	served := map[string]bool{}
	for i, res := range results {
		row := wireResult{wireRequest: reqs[i]}
		if res.Err != nil {
			row.Error = res.Err.Error()
			rep.Failed++
		} else {
			row.E2EUs = res.Prediction.E2EUs
			row.ActiveUs = res.Prediction.ActiveUs
			row.CPUUs = res.Prediction.CPUUs
			row.GPUsUsed = res.GPUs
			row.ScalingEfficiency = res.ScalingEfficiency
			row.AllReduceUs = res.AllReduceUs
			row.AllToAllUs = res.AllToAllUs
			row.ShardImbalance = res.ShardImbalance
			row.CacheHit = res.CacheHit
			served[reqs[i].Device] = true
		}
		rep.Results = append(rep.Results, row)
	}
	for _, d := range eng.Devices() {
		if n := eng.CalibrationRuns(d); n > 0 {
			rep.Calibrations[d] = n
		}
	}
	rep.Cache.Hits, rep.Cache.Misses = eng.CacheStats()
	rep.Cache.Rejected = eng.RejectedRequests()
	rep.Assets = eng.AssetStats()
	if rep.Failed == rep.Requests {
		rep.Error = &reportError{
			Code:    "all_requests_failed",
			Message: fmt.Sprintf("all %d requests failed; first error: %s", rep.Requests, rep.Results[0].Error),
		}
	}

	if cfg.SaveAssets != "" {
		if err := os.MkdirAll(cfg.SaveAssets, 0o755); err != nil {
			return nil, err
		}
		devices := make([]string, 0, len(served))
		for d := range served {
			devices = append(devices, d)
		}
		sort.Strings(devices)
		for _, d := range devices {
			data, err := eng.SaveAssets(d)
			if err != nil {
				return nil, err
			}
			name := strings.ReplaceAll(d, " ", "_") + ".json"
			if err := os.WriteFile(filepath.Join(cfg.SaveAssets, name), data, 0o644); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// generate writes a round-robin request list covering every workload on
// every device across a spread of batch sizes.
func generate(n int, out string) {
	batches := []int64{512, 1024, 2048, 4096}
	var reqs []wireRequest
	devices := dlrmperf.Devices()
	workloads := dlrmperf.Workloads()
	for i := 0; i < n; i++ {
		reqs = append(reqs, wireRequest{
			Workload: workloads[i%len(workloads)],
			Device:   devices[(i/len(workloads))%len(devices)],
			Batch:    batches[(i/(len(workloads)*len(devices)))%len(batches)],
		})
	}
	data, err := json.MarshalIndent(reqs, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := writeOut(out, append(data, '\n')); err != nil {
		fail(err)
	}
}

func readRequests(path string) ([]wireRequest, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var reqs []wireRequest
	if err := json.Unmarshal(data, &reqs); err != nil {
		return nil, fmt.Errorf("parsing requests: %w", err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no requests in %s", path)
	}
	return reqs, nil
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
