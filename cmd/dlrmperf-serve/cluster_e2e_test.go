package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/cluster"
	"dlrmperf/internal/serve"
)

// serveProc is one dlrmperf-serve child process (worker or
// coordinator) with its announced listen address and a race-guarded
// stderr tail for failure forensics.
type serveProc struct {
	name string
	cmd  *exec.Cmd

	addr string

	tailMu   sync.Mutex
	tailBuf  bytes.Buffer
	scanDone chan struct{}
}

func (p *serveProc) tail() string {
	p.tailMu.Lock()
	defer p.tailMu.Unlock()
	return p.tailBuf.String()
}

func (p *serveProc) base() string { return "http://" + p.addr }

// waitExit waits for the process to close stderr and exit, returning
// its wait error.
func (p *serveProc) waitExit(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case <-p.scanDone:
	case <-time.After(timeout):
		t.Fatalf("%s stderr never closed; tail:\n%s", p.name, p.tail())
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		t.Fatalf("%s never exited; tail:\n%s", p.name, p.tail())
		return nil
	}
}

// startServeProc launches the built binary with args and waits for its
// "listening on ADDR" announcement.
func startServeProc(t *testing.T, name, bin string, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{name: name, cmd: exec.Command(bin, args...), scanDone: make(chan struct{})}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.cmd.Process.Kill() })

	addrCh := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.tailMu.Lock()
			p.tailBuf.WriteString(line + "\n")
			p.tailMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.TrimSpace(line[i+len("listening on "):])
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j] // the coordinator line appends "(N static workers, ...)"
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never announced its address; tail:\n%s", name, p.tail())
	}
	return p
}

// waitForWorkers polls the coordinator's /healthz through the client
// until it reports n live workers.
func waitForWorkers(t *testing.T, cl *client.Client, coord *serveProc, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := cl.Healthz(context.Background())
		if err == nil && h.Status == "ok" && h.Workers == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered (last: %+v / %v); coordinator tail:\n%s", h, err, coord.tail())
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestE2ECluster is the cross-process sharded-serving end-to-end: it
// builds the binary once, starts 1 coordinator + 2 self-registering
// fast-calib workers, serves the mixed cluster fixture through the
// coordinator asserting device-affine routing (each device calibrated
// on exactly one worker) and a result-cache hit on the duplicate
// scenario, verifies the aggregated /stats invariant, SIGKILLs the
// worker owning V100 and requires the next V100 request to fail over
// transparently to the survivor (counted under rejected.worker_failed),
// and finally SIGTERMs the coordinator expecting a clean drain that
// propagates to the surviving worker: both exit 0.
func TestE2ECluster(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("drains via SIGTERM; not exercised on windows")
	}
	bin := filepath.Join(t.TempDir(), "dlrmperf-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}

	coord := startServeProc(t, "coordinator", bin,
		"-coordinator", "-listen", "127.0.0.1:0", "-liveness", "3s")
	w1 := startServeProc(t, "worker1", bin,
		"-listen", "127.0.0.1:0", "-fast-calib",
		"-register", coord.base(), "-heartbeat", "200ms")
	w2 := startServeProc(t, "worker2", bin,
		"-listen", "127.0.0.1:0", "-fast-calib",
		"-register", coord.base(), "-heartbeat", "200ms")
	workers := map[string]*serveProc{w1.base(): w1, w2.base(): w2}

	ctx := context.Background()
	cl := client.New(coord.base())

	// Both workers register within a few heartbeats.
	waitForWorkers(t, cl, coord, 2)

	// The coordinator re-exports the scenario registry.
	scenarios, err := cl.Scenarios(ctx)
	if err != nil || len(scenarios) == 0 {
		t.Fatalf("scenarios = %d names / %v", len(scenarios), err)
	}

	// The mixed fixture through the cluster: V100 and P100 rows split
	// across the two workers by rendezvous hashing, the duplicate
	// DLRM_DDP/V100 row served from a result cache. The coordinator's
	// report nests calibrations per worker, so it decodes through
	// PredictBatchInto rather than the worker-shaped PredictBatch.
	fixture, err := os.ReadFile(filepath.Join("testdata", "cluster_requests.json"))
	if err != nil {
		t.Fatal(err)
	}
	var reqs []serve.Request
	if err := json.Unmarshal(fixture, &reqs); err != nil {
		t.Fatal(err)
	}
	var rep cluster.Report
	if err := cl.PredictBatchInto(ctx, reqs, &rep); err != nil {
		t.Fatalf("batch: %v\ncoordinator tail:\n%s", err, coord.tail())
	}
	if rep.Requests != 4 || rep.Failed != 0 {
		t.Fatalf("fixture report = %d requests / %d failed, want 4/0: %+v", rep.Requests, rep.Failed, rep)
	}
	hit := false
	for _, row := range rep.Results {
		if row.CacheHit {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no cache hit on the duplicate fixture scenario: %+v", rep)
	}

	// Device-affine routing: each device calibrated on exactly one
	// worker, exactly once.
	owner := map[string]string{}
	for workerID, devs := range rep.Calibrations {
		for dev, runs := range devs {
			if prev, dup := owner[dev]; dup {
				t.Fatalf("device %s calibrated on both %s and %s", dev, prev, workerID)
			}
			owner[dev] = workerID
			if runs != 1 {
				t.Fatalf("device %s calibrated %d times on %s, want 1", dev, runs, workerID)
			}
		}
	}
	for _, dev := range []string{"V100", "P100"} {
		if owner[dev] == "" {
			t.Fatalf("device %s calibrated nowhere; ledger %v", dev, rep.Calibrations)
		}
	}

	// Aggregated accounting invariant, cluster-wide, at quiescence.
	var st cluster.Stats
	if err := cl.StatsInto(ctx, &st); err != nil {
		t.Fatal(err)
	}
	if got := st.Accounted(); got != st.Requests {
		t.Fatalf("cluster stats invariant broken: hits %d + misses %d + rejected %d = %d, requests %d\n%s",
			st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), got, st.Requests, coord.tail())
	}

	// Fault injection: SIGKILL the worker that owns V100, then ask for
	// a V100 scenario the cluster has not cached. The coordinator must
	// burn one attempt on the dead socket (counted under
	// rejected.worker_failed), fail over to the survivor, and answer
	// transparently.
	victim := workers[owner["V100"]]
	if victim == nil {
		t.Fatalf("V100 owner %q is not one of the started workers %v", owner["V100"], workers)
	}
	survivor := w1
	if victim == w1 {
		survivor = w2
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.waitExit(t, 30*time.Second) // SIGKILL: exit error expected, just reap it

	row, err := cl.Predict(ctx, serve.Request{Workload: "DLRM_DDP", Batch: 2048, Device: "V100"})
	if err != nil {
		t.Fatalf("failover predict: %v\ncoordinator tail:\n%s", err, coord.tail())
	}
	if row.Error != "" || row.E2EUs <= 0 {
		t.Fatalf("failover row = %+v, want a served prediction", row)
	}
	if err := cl.StatsInto(ctx, &st); err != nil {
		t.Fatal(err)
	}
	if st.Rejected.WorkerFailed == 0 {
		t.Fatalf("worker_failed = 0 after killing the V100 owner:\n%s", coord.tail())
	}
	if got := st.Accounted(); got != st.Requests {
		t.Fatalf("cluster invariant broken after failover: accounted %d, requests %d", got, st.Requests)
	}

	// Clean shutdown: SIGTERM the coordinator; it drains its routes and
	// propagates the drain to the surviving registered worker. Both
	// exit 0.
	if err := coord.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coord.waitExit(t, 2*time.Minute); err != nil {
		t.Fatalf("coordinator drain exited non-zero: %v; tail:\n%s", err, coord.tail())
	}
	if err := survivor.waitExit(t, 2*time.Minute); err != nil {
		t.Fatalf("survivor did not drain cleanly on propagation: %v; tail:\n%s", err, survivor.tail())
	}
	if !strings.Contains(survivor.tail(), "draining") {
		t.Errorf("survivor never logged its drain; tail:\n%s", survivor.tail())
	}
	t.Logf("cluster drained cleanly; coordinator tail:\n%s", coord.tail())
}

// TestClusterFlagValidation: -coordinator without -listen must fail
// fast instead of silently running a one-shot batch.
func TestClusterFlagValidation(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "dlrmperf-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-coordinator").CombinedOutput()
	if err == nil {
		t.Fatalf("-coordinator without -listen exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "-coordinator requires -listen") {
		t.Fatalf("unexpected failure output: %s", out)
	}
}
