// Command dlrmperf-bench drives the Analysis Track of Fig. 3.
//
// In the default "sweep" mode it runs the kernel microbenchmark sweep
// for one kernel family on one (simulated) device and writes the
// dataset as JSON:
//
//	dlrmperf-bench -kernel GEMM -n 2000 -device V100 -o gemm_v100.json
//
// In "calibrate" mode it runs the full concurrent calibration engine
// for a device — every kernel-family job fanned out on the worker pool
// — prints the Table IV evaluation rows, and optionally exports the
// portable asset set that warm-starts dlrmperf-serve:
//
//	dlrmperf-bench -mode calibrate -device V100 -save v100_assets.json
//
// In "scenarios" mode it lists the registered scenario generators with
// their resolved defaults and, for multi-GPU DLRM scenarios, the
// sharding planner's device loads and imbalance:
//
//	dlrmperf-bench -mode scenarios
//
// In "assetstore" mode it runs the engine's metered asset store under
// eviction pressure: a Zipf-skewed stream of graph requests over a
// working set larger than the cap, swept across capacities, printing
// the hit-rate curve with eviction and resident-byte counters:
//
//	dlrmperf-bench -mode assetstore -n 2000
//
// Every mode accepts -cpuprofile and -memprofile, writing pprof
// profiles of the run for the optimization workflow documented in the
// README's Performance section:
//
//	dlrmperf-bench -mode calibrate -cpuprofile calib.pprof
//	go tool pprof -top calib.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"dlrmperf/internal/engine"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/models"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/xrand"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmperf-bench:", err)
	os.Exit(1)
}

func main() {
	mode := flag.String("mode", "sweep", "sweep (one kernel family dataset) or calibrate (full engine calibration)")
	kernel := flag.String("kernel", "GEMM", "sweep mode: kernel kind (GEMM, EL-F, EL-B, concat, memcpy, transpose, tril-F, tril-B, elementwise, conv, batchnorm)")
	n := flag.Int("n", 1000, "sweep mode: number of shapes to sweep; assetstore mode: request-stream length")
	device := flag.String("device", hw.V100, "device name")
	seed := flag.Uint64("seed", 2022, "random seed")
	workers := flag.Int("workers", 0, "calibrate mode: worker pool size (0 = GOMAXPROCS)")
	save := flag.String("save", "", "calibrate mode: write the device's portable assets to this path")
	out := flag.String("o", "", "sweep mode: output JSON path (default: stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention, not churn
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	switch *mode {
	case "sweep":
		sweep(*kernel, *n, *device, *seed, *out)
	case "calibrate":
		calibrate(*device, *seed, *workers, *save)
	case "scenarios":
		scenarios()
	case "assetstore":
		assetstore(*seed, *n)
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

// assetstore drives the engine's graph class under eviction pressure:
// `requests` Zipf-skewed accesses over a working set of distinct
// (workload, batch) graphs, repeated for each capacity in the sweep.
// The graph class exercises the full store machinery (LRU, byte
// metering, singleflight rebuild) without paying any calibration, so
// the run completes in seconds and the hit-rate curve isolates the
// store itself.
func assetstore(seed uint64, requests int) {
	if requests <= 0 {
		requests = 1000
	}
	// Working set: every built-in workload crossed with four batch
	// sizes. Larger than every swept capacity except the last.
	type item struct {
		workload string
		batch    int64
	}
	var set []item
	workloads := append(models.DLRMNames(),
		models.NameResNet50, models.NameInceptionV3, models.NameTransformer)
	for _, w := range workloads {
		for _, b := range []int64{256, 512, 1024, 2048} {
			set = append(set, item{w, b})
		}
	}
	// The Zipf stream is fixed across capacities so the sweep isolates
	// the cap: same accesses, different eviction pressure.
	stream := xrand.ZipfStream(xrand.New(seed), len(set), 1.1, requests)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "capacity\trequests\thits\tmisses\tevictions\thit-rate\tresident\tbytes\n")
	caps := []int{1, 2, 4, 8, 12, 16, len(set)}
	for _, c := range caps {
		eng := engine.New(engine.Options{
			Seed:      seed,
			AssetCaps: engine.AssetCaps{Graphs: c},
		})
		for _, idx := range stream {
			if _, err := eng.Model(set[idx].workload, set[idx].batch); err != nil {
				fail(err)
			}
		}
		g := eng.AssetStats().Class("graphs")
		rate := float64(g.Hits) / float64(g.Hits+g.Misses)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1f%%\t%d\t%s\n",
			c, requests, g.Hits, g.Misses, g.Evictions, 100*rate,
			g.Resident, fmtBytes(g.Bytes))
	}
	tw.Flush()
	fmt.Printf("\nworking set: %d distinct graphs, zipf(s=1.1) stream of %d requests, seed %d\n",
		len(set), requests, seed)
}

// fmtBytes renders an approximate byte count human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// scenarios lists the registry with resolved defaults; multi-GPU DLRM
// entries get a static sharding-plan preview.
func scenarios() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario\tworkload\tbatch\tgpus\ttables\timbalance\tdescription\n")
	for _, name := range scenario.Names() {
		g, _ := scenario.Lookup(name)
		s, err := scenario.Build(name, 0, 0)
		if err != nil {
			fail(err)
		}
		imbalance := "-"
		tables := s.Tables
		if cfg, err := models.DLRMConfigFor(s.Workload, s.Batch); err == nil {
			if len(tables) == 0 {
				tables = scenario.TablesOf(cfg)
			}
			if s.NumDevices() > 1 {
				plan, err := scenario.PlanShards(tables, cfg.EmbDim, s.NumDevices())
				if err != nil {
					fail(err)
				}
				imbalance = fmt.Sprintf("%.1f%%", 100*plan.Imbalance())
			}
		}
		nTables := "-"
		if len(tables) > 0 {
			nTables = fmt.Sprintf("%d", len(tables))
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\n",
			name, s.Workload, s.Batch, s.NumDevices(), nTables, imbalance, g.Description)
	}
	tw.Flush()
}

// calibrate runs the device's full calibration on the engine's worker
// pool and prints the Table IV rows.
func calibrate(device string, seed uint64, workers int, save string) {
	// IncludeCNN keeps exported assets complete: a warm-started server
	// must predict CNN workloads too, exactly as a cold engine would.
	eng := engine.New(engine.Options{
		Seed: seed, SaltDeviceSeeds: true, Workers: workers,
		Calib: perfmodel.CalibOptions{IncludeCNN: true},
	})
	cal, err := eng.Calibration(device)
	if err != nil {
		fail(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "model\tGMAE\tmean\tstd\n")
	for _, e := range cal.Evals {
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.2f%%\t%.2f%%\n",
			e.Row, 100*e.Summary.GMAE, 100*e.Summary.Mean, 100*e.Summary.Std)
	}
	tw.Flush()
	if save == "" {
		return
	}
	data, err := eng.SaveAssets(device)
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(save, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s assets to %s\n", device, save)
}

// sweep collects one kernel family's microbenchmark dataset.
func sweep(kernel string, n int, device string, seed uint64, out string) {
	p, err := hw.ByName(device)
	if err != nil {
		fail(err)
	}
	var kind kernels.Kind
	found := false
	for _, k := range kernels.Kinds() {
		if k.String() == kernel {
			kind = k
			found = true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown kernel kind %q", kernel))
	}

	ds := microbench.CollectKind(p.GPU, kind, n, seed)
	data, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		fail(err)
	}
	if out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d samples of %s on %s to %s\n", len(ds.Samples), kind, p.GPU.Name, out)
}
