// Command dlrmperf-bench runs the kernel microbenchmark sweep for one
// kernel family on one (simulated) device and writes the dataset as JSON,
// the Analysis-Track artifact of Fig. 3.
//
// Usage:
//
//	dlrmperf-bench -kernel GEMM -n 2000 -device V100 -o gemm_v100.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
)

func main() {
	kernel := flag.String("kernel", "GEMM", "kernel kind (GEMM, EL-F, EL-B, concat, memcpy, transpose, tril-F, tril-B, elementwise, conv, batchnorm)")
	n := flag.Int("n", 1000, "number of shapes to sweep")
	device := flag.String("device", hw.V100, "device name")
	seed := flag.Uint64("seed", 2022, "random seed")
	out := flag.String("o", "", "output JSON path (default: stdout)")
	flag.Parse()

	p, err := hw.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var kind kernels.Kind
	found := false
	for _, k := range kernels.Kinds() {
		if k.String() == *kernel {
			kind = k
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown kernel kind %q\n", *kernel)
		os.Exit(1)
	}

	ds := microbench.CollectKind(p.GPU, kind, *n, *seed)
	data, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples of %s on %s to %s\n", len(ds.Samples), kind, p.GPU.Name, *out)
}
