// Command dlrmperf-train calibrates the full kernel performance model
// registry for a device and prints the Table IV evaluation rows. With
// -paper-grid it runs the full 280-point Table II hyperparameter search
// per ML model, as the paper does (hours instead of seconds).
//
// Usage:
//
//	dlrmperf-train -device V100 [-grid|-paper-grid] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmperf/internal/export"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/perfmodel"
)

func main() {
	device := flag.String("device", hw.V100, "device name")
	seed := flag.Uint64("seed", 2022, "random seed")
	grid := flag.Bool("grid", false, "use the fast hyperparameter grid")
	paperGrid := flag.Bool("paper-grid", false, "use the full Table II grid (280 configs per model)")
	cnn := flag.Bool("cnn", true, "also calibrate conv/batch-norm models")
	out := flag.String("o", "", "write the calibrated model registry as JSON to this path")
	flag.Parse()

	p, err := hw.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := perfmodel.CalibOptions{Seed: *seed, IncludeCNN: *cnn}
	if *paperGrid {
		opts.UseGridSearch = true
		opts.Space = mlp.PaperSearchSpace()
	} else if *grid {
		opts.UseGridSearch = true
	}

	cal := perfmodel.Calibrate(p.GPU, opts)
	t := export.NewTable(fmt.Sprintf("Kernel performance models on %s (held-out evaluation)", p.GPU.Name),
		"kernel", "GMAE", "mean", "std", "n")
	for _, e := range cal.Evals {
		t.AddRow(e.Row, export.PctAbs(e.Summary.GMAE), export.PctAbs(e.Summary.Mean),
			export.PctAbs(e.Summary.Std), e.Summary.N)
	}
	fmt.Println(t.Render())

	if *out != "" {
		data, err := perfmodel.SaveRegistry(cal.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote calibrated models to %s\n", *out)
	}
}
