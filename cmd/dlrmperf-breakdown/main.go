// Command dlrmperf-breakdown runs a workload on the simulated device and
// prints the Fig. 5-style device time breakdown: per-op device time,
// idle share, and GPU utilization.
//
// Usage:
//
//	dlrmperf-breakdown -model DLRM_MLPerf -batch 2048 -device V100
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmperf/internal/export"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/sim"
)

func main() {
	model := flag.String("model", models.NameDLRMDefault, "workload name")
	batch := flag.Int64("batch", 2048, "batch size")
	device := flag.String("device", hw.V100, "device name")
	seed := flag.Uint64("seed", 2022, "random seed")
	iters := flag.Int("iters", 30, "measured iterations")
	flag.Parse()

	p, err := hw.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := models.Build(*model, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := sim.Run(m.Graph, sim.Config{
		Platform: p, Seed: *seed, Warmup: 5, Iters: *iters, Workload: m.Name,
	})

	fmt.Printf("%s  batch=%d  device=%s\n", m.Name, *batch, p.GPU.Name)
	fmt.Printf("per-batch: %.0f us   active: %.0f us   utilization: %.1f%%\n\n",
		r.MeanIterTime, r.MeanActiveTime, 100*r.Trace.Utilization())

	t := export.NewTable("Device time breakdown (profiler-style)", "op", "time", "share")
	for _, e := range r.Trace.Breakdown(0.005) {
		t.AddRow(e.Op, export.Us(e.Time), export.PctAbs(e.Share))
	}
	fmt.Println(t.Render())
}
