// Command dlrmperf-explore sweeps a design-space grid through one
// in-process prediction engine: a JSON grid spec in (workload family ×
// device × GPU count × comm model × batch size per-axis value lists),
// a JSON sweep report out (coverage accounting, Pareto frontier,
// best-strategy-per-workload, sweep throughput), plus a human summary
// table on stderr.
//
//	dlrmperf-explore -grid internal/explore/testdata/grid.json -fast-calib
//
// -repeat N sweeps the same grid N times against one engine — the
// first pass pays the calibrations and predictions, every later pass
// is served from the result cache — and -min-warm-hit-rate turns the
// "repeat explorations are nearly free" claim into an exit code: the
// run fails unless the final pass's cache hit rate reaches the
// threshold. That pair is the self-asserting CI smoke (`make
// explore-demo`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"dlrmperf"
	"dlrmperf/internal/explore"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmperf-explore:", err)
	os.Exit(1)
}

// cliReport is the command's JSON output: the final pass's full report
// plus a coverage/throughput line per pass.
type cliReport struct {
	Passes []passSummary   `json:"passes"`
	Report *explore.Report `json:"report"`
}

// passSummary is one sweep pass's headline numbers.
type passSummary struct {
	Pass          int     `json:"pass"`
	GridPoints    int     `json:"grid_points"`
	Unique        int     `json:"unique"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
}

type options struct {
	grid           string
	out            string
	seed           uint64
	workers        int
	fastCalib      bool
	assets         []string
	repeat         int
	minWarmHitRate float64
}

func main() {
	gridPath := flag.String("grid", "-", "grid JSON path (- for stdin)")
	out := flag.String("o", "-", "report JSON path (- for stdout)")
	seed := flag.Uint64("seed", 2022, "engine seed")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	fastCalib := flag.Bool("fast-calib", false, "low-fidelity calibration (eighth-size sweeps, tiny networks) for smoke tests and CI")
	assets := flag.String("assets", "", "comma-separated warm-start asset files from dlrmperf-serve -save-assets / dlrmperf-bench -save")
	repeat := flag.Int("repeat", 1, "sweep the grid this many times against one engine (pass 2+ measures the warm path)")
	minWarm := flag.Float64("min-warm-hit-rate", 0, "with -repeat > 1, fail unless the final pass's cache hit rate reaches this fraction")
	flag.Parse()

	opts := options{
		grid: *gridPath, out: *out, seed: *seed, workers: *workers,
		fastCalib: *fastCalib, repeat: *repeat, minWarmHitRate: *minWarm,
	}
	for _, p := range splitCSV(*assets) {
		opts.assets = append(opts.assets, p)
	}
	rep, err := run(opts, os.Stderr)
	if err != nil {
		fail(err)
	}
	if err := writeReport(opts.out, rep); err != nil {
		fail(err)
	}
	last := rep.Passes[len(rep.Passes)-1]
	if opts.repeat > 1 && last.CacheHitRate < opts.minWarmHitRate {
		fail(fmt.Errorf("warm pass cache hit rate %.3f below the -min-warm-hit-rate floor %.3f",
			last.CacheHitRate, opts.minWarmHitRate))
	}
}

// run executes the sweep passes and renders the human summary to w.
func run(opts options, w io.Writer) (*cliReport, error) {
	g, err := readGrid(opts.grid)
	if err != nil {
		return nil, err
	}
	if opts.repeat < 1 {
		opts.repeat = 1
	}
	cfg := dlrmperf.EngineConfig{Seed: opts.seed, Workers: opts.workers}
	if opts.fastCalib {
		cfg = dlrmperf.FastCalibConfig(opts.seed, opts.workers)
	}
	eng, err := dlrmperf.NewEngineWith(cfg)
	if err != nil {
		return nil, err
	}
	for _, path := range opts.assets {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := eng.LoadAssets(data); err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
	}

	out := &cliReport{}
	for pass := 1; pass <= opts.repeat; pass++ {
		rep, err := explore.Sweep(context.Background(), eng, g)
		if err != nil {
			return nil, err
		}
		out.Report = rep
		out.Passes = append(out.Passes, passSummary{
			Pass: pass, GridPoints: rep.GridPoints, Unique: rep.Unique,
			CacheHitRate: rep.CacheHitRate, ElapsedMs: rep.ElapsedMs,
			ConfigsPerSec: rep.ConfigsPerSec,
		})
	}
	renderSummary(w, out)
	return out, nil
}

func readGrid(path string) (explore.Grid, error) {
	var g explore.Grid
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(data, &g); err != nil {
		return g, fmt.Errorf("parsing grid %s: %w", path, err)
	}
	return g, nil
}

func writeReport(path string, rep *cliReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func splitCSV(csv string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(csv); i++ {
		if i == len(csv) || csv[i] == ',' {
			if p := csv[start:i]; p != "" {
				out = append(out, p)
			}
			start = i + 1
		}
	}
	return out
}

// renderSummary prints the human-facing tables: per-pass coverage and
// throughput, the Pareto frontier, and the best strategy per workload.
func renderSummary(w io.Writer, rep *cliReport) {
	r := rep.Report
	for _, p := range rep.Passes {
		fmt.Fprintf(w, "pass %d: %d grid points (%d unique), cache hit rate %.1f%%, %.0f configs/sec, %.2f ms\n",
			p.Pass, p.GridPoints, p.Unique, 100*p.CacheHitRate, p.ConfigsPerSec, p.ElapsedMs)
	}
	fmt.Fprintf(w, "coverage: %d unique + %d duplicates + %d rejected = %d grid points; %d predicted, %d failed\n",
		r.Unique, r.Duplicates, r.Rejected, r.GridPoints, r.Predicted, r.Failed)

	fmt.Fprintf(w, "\npareto frontier (predicted step time vs devices):\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "devices\tscenario\tdevice\tcomm\tbatch\te2e(us)\tsamples/s\n")
	for _, row := range r.Frontier {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%.1f\t%.0f\n",
			row.Devices, row.Scenario, row.Device, commName(row), row.Batch, row.E2EUs, row.SamplesPerSec)
	}
	tw.Flush()

	fmt.Fprintf(w, "\nbest strategy per workload:\n")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\tscenario\tdevice\tdevices\tcomm\tbatch\te2e(us)\tsamples/s\n")
	workloads := make([]string, 0, len(r.Best))
	for name := range r.Best {
		workloads = append(workloads, name)
	}
	sort.Strings(workloads)
	for _, name := range workloads {
		row := r.Best[name]
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%d\t%.1f\t%.0f\n",
			name, row.Scenario, row.Device, row.Devices, commName(row), row.Batch, row.E2EUs, row.SamplesPerSec)
	}
	tw.Flush()
}

// commName renders the effective comm model: none on single-device
// rows, the NVLink default on multi-device rows that left it unset.
func commName(r explore.Row) string {
	if r.Devices <= 1 {
		return "-"
	}
	if r.Comm == "" {
		return "nvlink"
	}
	return r.Comm
}
