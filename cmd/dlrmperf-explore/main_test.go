package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunDemoGrid drives the full CLI path (grid file → fast-calib
// engine → two sweep passes → summary render) on the checked-in
// fixture and pins the acceptance numbers: exact 16/8/4/4 coverage and
// a 100% warm-pass hit rate.
func TestRunDemoGrid(t *testing.T) {
	var summary bytes.Buffer
	rep, err := run(options{
		grid:      "../../internal/explore/testdata/grid.json",
		seed:      2022,
		fastCalib: true,
		repeat:    2,
	}, &summary)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(rep.Passes))
	}
	r := rep.Report
	if r.GridPoints != 16 || r.Unique != 8 || r.Duplicates != 4 || r.Rejected != 4 {
		t.Fatalf("coverage = %d/%d/%d/%d, want 16/8/4/4",
			r.GridPoints, r.Unique, r.Duplicates, r.Rejected)
	}
	if r.Failed != 0 {
		t.Fatalf("failed predictions: %+v", r.FailedSamples)
	}
	if cold := rep.Passes[0]; cold.CacheHitRate != 0 {
		t.Errorf("cold pass hit rate = %v, want 0", cold.CacheHitRate)
	}
	if warm := rep.Passes[1]; warm.CacheHitRate != 1 {
		t.Errorf("warm pass hit rate = %v, want 1", warm.CacheHitRate)
	}
	if len(r.Frontier) == 0 || len(r.Best) == 0 {
		t.Errorf("report missing frontier or best table")
	}
	for _, want := range []string{"pass 1:", "pass 2:", "pareto frontier", "best strategy per workload"} {
		if !strings.Contains(summary.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, summary.String())
		}
	}
}

// TestRunBadGrid: unreadable and structurally empty grids surface as
// errors before any engine work.
func TestRunBadGrid(t *testing.T) {
	if _, err := run(options{grid: "no/such/grid.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing grid file did not error")
	}
}

// TestSplitCSV pins the flag helper's edge cases.
func TestSplitCSV(t *testing.T) {
	if got := splitCSV(""); len(got) != 0 {
		t.Errorf("splitCSV(\"\") = %v", got)
	}
	got := splitCSV("a,,b,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitCSV(\"a,,b,\") = %v", got)
	}
}
