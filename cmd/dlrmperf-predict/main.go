// Command dlrmperf-predict runs the full prediction pipeline for one
// workload on one device: calibrate kernel models, collect overheads from
// a profiled run, predict the per-batch training time with Algorithm 1,
// and compare against the measured (simulated) time.
//
// Usage:
//
//	dlrmperf-predict -model DLRM_default -batch 2048 -device V100
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmperf"
)

func main() {
	model := flag.String("model", dlrmperf.DLRMDefault, "workload name")
	batch := flag.Int64("batch", 2048, "batch size")
	device := flag.String("device", dlrmperf.V100, "device name")
	seed := flag.Uint64("seed", 2022, "random seed")
	flag.Parse()

	pipe, err := dlrmperf.NewPipeline(*device, dlrmperf.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w, err := dlrmperf.NewModel(*model, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload: %s  batch=%d  ops=%d  kernels=%d  device=%s\n",
		w.Name(), w.BatchSize(), w.Ops(), w.Kernels(), pipe.Device())

	meas := pipe.Measure(w, *seed+1)
	db, err := pipe.CollectOverheads(w, *seed+2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pred, err := pipe.Predict(w, db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ko, err := pipe.KernelOnly(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rel := func(p float64) float64 { return 100 * (p - meas.IterTimeUs) / meas.IterTimeUs }
	fmt.Printf("measured:        %10.0f us per batch (active %0.f us, utilization %.1f%%)\n",
		meas.IterTimeUs, meas.ActiveTimeUs, 100*meas.Utilization)
	fmt.Printf("predicted E2E:   %10.0f us  (%+.2f%%)\n", pred.E2EUs, rel(pred.E2EUs))
	fmt.Printf("predicted active:%10.0f us  (%+.2f%% vs measured active)\n",
		pred.ActiveUs, 100*(pred.ActiveUs-meas.ActiveTimeUs)/meas.ActiveTimeUs)
	fmt.Printf("kernel-only:     %10.0f us  (%+.2f%%)\n", ko, rel(ko))
}
