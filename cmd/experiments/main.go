// Command experiments regenerates every table and figure of the paper's
// evaluation section, plus the co-design case studies and ablations.
//
// Usage:
//
//	experiments [-run all|fig01|fig05|table04|fig07|fig08|fig09|table05|fig10|fig11|sharding|ablation]
//	            [-seed N] [-devices V100,TITAN Xp,P100] [-iters N] [-grid]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlrmperf/internal/experiments"
	"dlrmperf/internal/perfmodel"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, fig01, fig05, table04, fig07, fig08, fig09, table05, fig10, fig11, sharding, ablation)")
	seed := flag.Uint64("seed", 2022, "random seed")
	devices := flag.String("devices", "", "comma-separated device subset (default: all)")
	iters := flag.Int("iters", 30, "measured iterations per run")
	grid := flag.Bool("grid", false, "use Table II hyperparameter grid search for ML kernel models (slow)")
	shards := flag.Int("shards", 4, "device count for the sharding study")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Iters: *iters}
	if *devices != "" {
		opts.Devices = strings.Split(*devices, ",")
	}
	if *grid {
		opts.Calib = perfmodel.CalibOptions{UseGridSearch: true}
	}
	s := experiments.NewSuite(opts)

	want := func(name string) bool { return *run == "all" || *run == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if want("fig01") {
		rows, err := s.Fig01()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig01(rows))
	}
	if want("fig05") {
		res, err := s.Fig05()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig05(res))
	}
	if want("table04") {
		cells, err := s.Table04()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable04(cells, s.Options().Devices))
	}
	if want("fig07") {
		rows, err := s.Fig07()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig07(rows))
	}
	if want("fig08") {
		rows, err := s.Fig08()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig08(rows))
	}
	if want("fig09") || want("table05") {
		rows, err := s.Fig09()
		if err != nil {
			fail(err)
		}
		if want("fig09") {
			fmt.Println(experiments.RenderFig09(rows))
		}
		if want("table05") {
			fmt.Println(experiments.RenderTable05(experiments.Table05(rows)))
		}
	}
	if want("fig10") {
		rows, err := s.Fig10()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig10(rows))
	}
	if want("fig11") {
		rows, err := s.Fig11()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig11(rows))
	}
	if want("sharding") {
		schemes, err := s.Sharding(*shards)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderSharding(schemes))
	}
	if want("ablation") {
		rows, err := s.AblationOverheadPolicy()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderAblation(rows))
	}
}
