package main

import "testing"

func TestParseTenants(t *testing.T) {
	specs, err := parseTenants("hot:200:high, bg:20 ,default:1.5:low")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(specs))
	}
	if specs[0].Name != "hot" || specs[0].RPS != 200 || specs[0].Priority != "high" {
		t.Fatalf("first spec = %+v", specs[0])
	}
	if specs[1].Name != "bg" || specs[1].RPS != 20 || specs[1].Priority != "" {
		t.Fatalf("second spec = %+v", specs[1])
	}
	if specs[2].RPS != 1.5 {
		t.Fatalf("fractional rps = %+v", specs[2])
	}

	for _, bad := range []string{"", "solo", "t:0", "t:-5", "t:abc", "t:5:urgent", "t:5:high:extra"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("spec %q accepted, want an error", bad)
		}
	}
}
