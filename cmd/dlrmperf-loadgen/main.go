// Command dlrmperf-loadgen replays load against a live dlrmperf-serve
// worker or coordinator and reports SLO accounting: p50/p95/p99
// latency, achieved throughput, shed rate by rejection code, cache
// hit rate, and a per-tenant breakdown. The stream is either a
// Zipf-skewed synthetic pool or a checked-in trace file, fired by a
// bounded open-loop scheduler (per-tenant fixed-rate clocks, shared
// in-flight cap), and every request goes through the typed client —
// the same path the coordinator itself uses.
//
//	dlrmperf-loadgen -target http://127.0.0.1:8080 \
//	    -tenants hot:200:high,bg:20 -duration 10s -o report.json
//
// -bench-out writes the latency quantiles as a benchdiff-compatible
// suite, so load runs join the same ratcheting regression gate as the
// micro benchmarks. -max-shed-rate and -assert-invariant turn the run
// into a self-asserting smoke: it fails if the server sheds more than
// the bound or its /stats accounting identity breaks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/loadgen"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlrmperf-loadgen:", err)
	os.Exit(1)
}

// parseTenants reads the -tenants spec: comma-separated
// name:rps[:priority] entries.
func parseTenants(spec string) ([]loadgen.TenantSpec, error) {
	var out []loadgen.TenantSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("tenant %q: want name:rps or name:rps:priority", entry)
		}
		rps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rps <= 0 {
			return nil, fmt.Errorf("tenant %q: bad rps %q", entry, parts[1])
		}
		ts := loadgen.TenantSpec{Name: parts[0], RPS: rps}
		if len(parts) == 3 {
			switch parts[2] {
			case "high", "normal", "low":
				ts.Priority = parts[2]
			default:
				return nil, fmt.Errorf("tenant %q: priority must be one of high, normal, low", entry)
			}
		}
		out = append(out, ts)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", spec)
	}
	return out, nil
}

// waitReady polls the target's /healthz until it answers with at
// least minWorkers live workers (coordinators report the count;
// workers report none and pass with minWorkers 0).
func waitReady(ctx context.Context, cl *client.Client, minWorkers int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		h, err := cl.Healthz(ctx)
		if err == nil && h.Status == "ok" && h.Workers >= minWorkers {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("target not ready after %s: %w", budget, err)
			}
			return fmt.Errorf("target not ready after %s: status %q, %d workers (want >= %d)", budget, h.Status, h.Workers, minWorkers)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func main() {
	target := flag.String("target", "", "base URL of the worker or coordinator under load (required)")
	tenantsSpec := flag.String("tenants", "default:50", "offered load: comma-separated name:rps[:priority] entries")
	trace := flag.String("trace", "", "replay trace JSON (array of requests, or {\"requests\": [...]}); empty synthesizes a pool")
	duration := flag.Duration("duration", 0, "wall-clock budget (0 with -n 0 defaults to 5s)")
	n := flag.Int("n", 0, "requests to schedule per tenant (0 = bound by -duration)")
	maxInFlight := flag.Int("max-inflight", 64, "outstanding-request cap across all tenants")
	zipf := flag.Float64("zipf", 1.0, "zipf skew of the draw over the pool (0 = uniform)")
	poolSize := flag.Int("pool-size", 32, "synthetic pool size (ignored with -trace)")
	seed := flag.Int64("seed", 2022, "sampler seed (reproducible streams)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	out := flag.String("o", "-", "report JSON path (- for stdout)")
	benchOut := flag.String("bench-out", "", "write latency quantiles as a benchdiff suite to this path")
	maxShedRate := flag.Float64("max-shed-rate", 0.9, "fail when the overall shed rate exceeds this fraction")
	assertInvariant := flag.Bool("assert-invariant", false, "fetch /stats after the run and fail unless hits+misses+rejected == requests")
	waitWorkers := flag.Int("wait-workers", 0, "block until the target reports at least this many live workers")
	waitBudget := flag.Duration("wait-budget", 30*time.Second, "how long -wait-workers may block")
	flag.Parse()

	if *target == "" {
		fail(fmt.Errorf("-target is required"))
	}
	tenants, err := parseTenants(*tenantsSpec)
	if err != nil {
		fail(err)
	}
	cfg := loadgen.Config{
		Target:         *target,
		Tenants:        tenants,
		Duration:       *duration,
		N:              *n,
		MaxInFlight:    *maxInFlight,
		ZipfSkew:       *zipf,
		PoolSize:       *poolSize,
		Seed:           *seed,
		Timeout:        *timeout,
		CheckInvariant: *assertInvariant,
	}
	if *trace != "" {
		if cfg.Requests, err = loadgen.LoadTrace(*trace); err != nil {
			fail(err)
		}
	}

	ctx := context.Background()
	cl := client.New(*target)
	if err := waitReady(ctx, cl, *waitWorkers, *waitBudget); err != nil {
		fail(err)
	}

	rep, runErr := loadgen.Run(ctx, cfg)
	if rep != nil {
		if err := writeReport(*out, rep); err != nil {
			fail(err)
		}
		if *benchOut != "" {
			if err := writeJSON(*benchOut, rep.BenchSuite()); err != nil {
				fail(err)
			}
		}
		renderSummary(os.Stderr, rep)
	}
	if runErr != nil {
		fail(runErr)
	}
	if rep.Totals.ShedRate > *maxShedRate {
		fail(fmt.Errorf("shed rate %.3f exceeds the -max-shed-rate bound %.3f", rep.Totals.ShedRate, *maxShedRate))
	}
	if rep.Totals.Transport > 0 {
		fail(fmt.Errorf("%d transport errors against %s", rep.Totals.Transport, *target))
	}
}

func writeReport(path string, rep *loadgen.Report) error {
	if path == "-" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return writeJSON(path, rep)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// renderSummary prints the human-facing per-tenant table.
func renderSummary(w io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(w, "target %s, %.1fs, seed %d, zipf %.2f\n", rep.Target, rep.DurationSecs, rep.Seed, rep.ZipfSkew)
	rows := append([]loadgen.TenantReport{rep.Totals}, rep.Tenants...)
	for _, tr := range rows {
		shed := ""
		if len(tr.Shed) > 0 {
			codes := make([]string, 0, len(tr.Shed))
			for code, n := range tr.Shed {
				codes = append(codes, fmt.Sprintf("%s %d", code, n))
			}
			sort.Strings(codes)
			shed = " (" + strings.Join(codes, ", ") + ")"
		}
		fmt.Fprintf(w, "%-12s ok %5d  shed %5.1f%%%s  hit %5.1f%%  %7.1f rps  p50 %6dus  p95 %6dus  p99 %6dus\n",
			tr.Name, tr.OK, 100*tr.ShedRate, shed, 100*tr.CacheHitRate, tr.AchievedRPS,
			tr.Latency.P50, tr.Latency.P95, tr.Latency.P99)
	}
	if rep.Server != nil {
		verdict := "ok"
		if !rep.Server.InvariantOK {
			verdict = "BROKEN"
		}
		fmt.Fprintf(w, "server: %d requests = %d hits + %d misses + %d rejected — invariant %s\n",
			rep.Server.Requests, rep.Server.CacheHits, rep.Server.CacheMisses, rep.Server.Rejected, verdict)
	}
}
