package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dlrmperf/internal/loadgen"
)

// serveProc is one dlrmperf-serve child process with its announced
// listen address and a race-guarded stderr tail for failure forensics.
type serveProc struct {
	name string
	cmd  *exec.Cmd

	addr string

	tailMu  sync.Mutex
	tailBuf bytes.Buffer
}

func (p *serveProc) tail() string {
	p.tailMu.Lock()
	defer p.tailMu.Unlock()
	return p.tailBuf.String()
}

func (p *serveProc) base() string { return "http://" + p.addr }

// startServeProc launches the serve binary with args and waits for its
// "listening on ADDR" announcement.
func startServeProc(t *testing.T, name, bin string, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{name: name, cmd: exec.Command(bin, args...)}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.cmd.Process.Kill() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.tailMu.Lock()
			p.tailBuf.WriteString(line + "\n")
			p.tailMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.TrimSpace(line[i+len("listening on "):])
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never announced its address; tail:\n%s", name, p.tail())
	}
	return p
}

func buildBinary(t *testing.T, dir, pkgDir string) string {
	t.Helper()
	abs, err := filepath.Abs(pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, filepath.Base(abs))
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir = pkgDir
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkgDir, err, out)
	}
	return bin
}

// TestE2ELoadgen is the cross-process load-harness smoke that `make
// loadtest` runs in CI: build dlrmperf-serve and dlrmperf-loadgen,
// stand up 1 coordinator + 2 fast-calib workers, replay the checked-in
// trace with a hot and a background tenant through the loadgen binary,
// and check the emitted report — requests succeeded, the per-tenant
// breakdown is present, the cluster-wide accounting invariant held,
// and the benchdiff bridge file decodes.
func TestE2ELoadgen(t *testing.T) {
	dir := t.TempDir()
	serveBin := buildBinary(t, dir, filepath.Join("..", "dlrmperf-serve"))
	loadgenBin := buildBinary(t, dir, ".")

	coord := startServeProc(t, "coordinator", serveBin,
		"-coordinator", "-listen", "127.0.0.1:0", "-liveness", "3s")
	startServeProc(t, "worker1", serveBin,
		"-listen", "127.0.0.1:0", "-fast-calib", "-queue", "4",
		"-register", coord.base(), "-heartbeat", "200ms")
	startServeProc(t, "worker2", serveBin,
		"-listen", "127.0.0.1:0", "-fast-calib", "-queue", "4",
		"-register", coord.base(), "-heartbeat", "200ms")

	reportPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "bench.json")
	run := exec.Command(loadgenBin,
		"-target", coord.base(),
		"-wait-workers", "2",
		"-trace", filepath.Join("testdata", "trace.json"),
		"-tenants", "hot:200:high,bg:20:low",
		"-n", "60",
		"-seed", "11",
		"-timeout", "2m",
		"-assert-invariant",
		"-o", reportPath,
		"-bench-out", benchPath,
	)
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen run failed: %v\n%s\ncoordinator tail:\n%s", err, out, coord.tail())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not decode: %v\n%s", err, data)
	}
	if rep.Totals.Scheduled != 120 || rep.Totals.Sent+rep.Totals.Missed != 120 {
		t.Fatalf("schedule accounting = %+v, want 120 scheduled", rep.Totals)
	}
	if rep.Totals.OK == 0 {
		t.Fatalf("no request succeeded against the cluster:\n%s", out)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant breakdown has %d entries, want 2:\n%s", len(rep.Tenants), data)
	}
	for _, tr := range rep.Tenants {
		if tr.Name != "hot" && tr.Name != "bg" {
			t.Fatalf("unexpected tenant %q in report", tr.Name)
		}
	}
	if rep.Server == nil || !rep.Server.InvariantOK {
		t.Fatalf("cluster invariant not verified: %+v\n%s", rep.Server, out)
	}
	if rep.Totals.CacheHitRate == 0 {
		t.Errorf("no cache hits replaying a 4-row trace %d times", rep.Totals.OK)
	}

	benchData, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var suite loadgen.BenchSuite
	if err := json.Unmarshal(benchData, &suite); err != nil {
		t.Fatalf("bench suite does not decode: %v\n%s", err, benchData)
	}
	p99, ok := suite.Benchmarks["LoadgenLatencyP99"]
	if !ok || p99.NsPerOp <= 0 || p99.BytesPerOp != -1 {
		t.Fatalf("bench suite = %+v, want a populated LoadgenLatencyP99 with -1 alloc markers", suite)
	}
}

// TestLoadgenFlagValidation: unusable invocations fail fast with a
// diagnostic instead of hammering nothing.
func TestLoadgenFlagValidation(t *testing.T) {
	bin := buildBinary(t, t.TempDir(), ".")
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no target", nil, "-target is required"},
		{"bad tenant", []string{"-target", "http://x", "-tenants", "solo"}, "want name:rps"},
		{"bad rps", []string{"-target", "http://x", "-tenants", "t:fast"}, "bad rps"},
		{"bad priority", []string{"-target", "http://x", "-tenants", "t:5:urgent"}, "priority must be"},
		{"bad trace", []string{"-target", "http://x", "-trace", "testdata/nope.json"}, "nope.json"},
	} {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err == nil {
			t.Fatalf("%s exited 0:\n%s", tc.name, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Fatalf("%s: output %q does not mention %q", tc.name, out, tc.want)
		}
	}
}
