// Command benchdiff is the bench-regression gate behind `make
// bench-check` and the CI bench job. It has two modes sharing one JSON
// schema:
//
//	go test -run xxx -bench 'PredictBatchCached$|CalibrateParallel$' -benchmem -count 5 . \
//	  | benchdiff -parse -o BENCH_pr.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json
//
// -parse reads `go test -bench` text and writes one entry per
// benchmark with the minimum ns/op, B/op, and allocs/op across the
// -count samples (minimum, not mean: scheduler noise only ever adds
// time, so the minimum is the most reproducible estimate across
// machines).
//
// The compare mode fails (exit 1) when any baseline benchmark is
// missing from the current run, slower than the time threshold
// (-max-time, default +25% ns/op), or allocating over the allocation
// threshold (-max-allocs, default +10% allocs/op). Allocation counts
// are deterministic, so the tight bound is the real tripwire;
// the generous time bound absorbs machine-to-machine variance.
//
// The ratchet mode (`make bench-ratchet`) makes performance wins
// permanent:
//
//	benchdiff -ratchet -baseline BENCH_baseline.json -current BENCH_pr.json -o BENCH_baseline.json
//
// rewrites the baseline with, per benchmark and per metric, the
// minimum of the old baseline and the current run — benchmarks new in
// the current run are added, baseline-only benchmarks are kept, and no
// metric can ever loosen (a slower current run leaves the baseline
// byte-identical). Committing the ratcheted baseline turns today's
// improvement into tomorrow's regression gate: a future PR that gives
// the headroom back fails the ordinary compare.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark's aggregated measurement.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Suite maps normalized benchmark names (Benchmark prefix and
// GOMAXPROCS suffix stripped) to their measurements.
type Suite struct {
	Benchmarks map[string]Sample `json:"benchmarks"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` text from stdin (or -in) into JSON")
	in := flag.String("in", "-", "bench text input for -parse (- for stdin)")
	out := flag.String("o", "-", "JSON output for -parse (- for stdout)")
	baseline := flag.String("baseline", "", "baseline suite JSON (compare/ratchet mode)")
	current := flag.String("current", "", "current suite JSON (compare/ratchet mode)")
	ratchet := flag.Bool("ratchet", false, "tighten the baseline to per-metric minima of baseline and current, writing to -o")
	maxTime := flag.Float64("max-time", 0.25, "maximum allowed ns/op regression (0.25 = +25%)")
	maxAllocs := flag.Float64("max-allocs", 0.10, "maximum allowed allocs/op regression (0.10 = +10%)")
	flag.Parse()

	if *parse {
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			r = f
		}
		suite, err := parseBench(r)
		if err != nil {
			fail(err)
		}
		if err := writeSuite(*out, suite); err != nil {
			fail(err)
		}
		return
	}

	if *baseline == "" || *current == "" {
		fail(fmt.Errorf("compare mode needs -baseline and -current (or use -parse)"))
	}
	base, err := loadSuite(*baseline)
	if err != nil {
		fail(err)
	}
	cur, err := loadSuite(*current)
	if err != nil {
		fail(err)
	}
	if *ratchet {
		merged, notes := ratchetSuite(base, cur)
		for _, n := range notes {
			fmt.Println(n)
		}
		if len(notes) == 0 {
			fmt.Println("ratchet: no metric tightened; baseline unchanged")
		}
		if err := writeSuite(*out, merged); err != nil {
			fail(err)
		}
		return
	}
	report, regressions := compare(base, cur, *maxTime, *maxAllocs)
	fmt.Print(report)
	if len(regressions) > 0 {
		fail(fmt.Errorf("%d benchmark regression(s)", len(regressions)))
	}
}

// writeSuite marshals a suite to path ("-" for stdout).
func writeSuite(path string, s Suite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ratchetSuite merges the current run into the baseline, keeping per
// benchmark and per metric the minimum of the two. Benchmarks only in
// the baseline survive unchanged; benchmarks only in the current run
// are added. The merge is monotone: no metric in the returned suite is
// ever larger than its baseline value, so a slower current run cannot
// loosen the gate. notes describes each tightening for the log.
func ratchetSuite(base, cur Suite) (Suite, []string) {
	merged := Suite{Benchmarks: make(map[string]Sample, len(base.Benchmarks))}
	for name, bs := range base.Benchmarks {
		merged.Benchmarks[name] = bs
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var notes []string
	for _, name := range names {
		cs := cur.Benchmarks[name]
		bs, ok := merged.Benchmarks[name]
		if !ok {
			merged.Benchmarks[name] = cs
			notes = append(notes, fmt.Sprintf("ratchet: %s added (%.0f ns/op, %d allocs/op)",
				name, cs.NsPerOp, cs.AllocsPerOp))
			continue
		}
		next := bs
		var parts []string
		if cs.NsPerOp > 0 && (bs.NsPerOp <= 0 || cs.NsPerOp < bs.NsPerOp) {
			next.NsPerOp = cs.NsPerOp
			parts = append(parts, fmt.Sprintf("ns/op %.0f -> %.0f", bs.NsPerOp, cs.NsPerOp))
		}
		if cs.BytesPerOp >= 0 && (bs.BytesPerOp < 0 || cs.BytesPerOp < bs.BytesPerOp) {
			next.BytesPerOp = cs.BytesPerOp
			parts = append(parts, fmt.Sprintf("B/op %d -> %d", bs.BytesPerOp, cs.BytesPerOp))
		}
		if cs.AllocsPerOp >= 0 && (bs.AllocsPerOp < 0 || cs.AllocsPerOp < bs.AllocsPerOp) {
			next.AllocsPerOp = cs.AllocsPerOp
			parts = append(parts, fmt.Sprintf("allocs/op %d -> %d", bs.AllocsPerOp, cs.AllocsPerOp))
		}
		if len(parts) == 0 {
			continue // current run is no better anywhere: baseline entry untouched
		}
		next.Samples = cs.Samples
		merged.Benchmarks[name] = next
		notes = append(notes, fmt.Sprintf("ratchet: %s tightened (%s)", name, strings.Join(parts, ", ")))
	}
	return merged, notes
}

func loadSuite(path string) (Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, err
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return Suite{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return Suite{}, fmt.Errorf("%s holds no benchmarks", path)
	}
	return s, nil
}

// normalizeName strips the Benchmark prefix and the -GOMAXPROCS
// suffix, so runs from machines with different core counts compare.
func normalizeName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// parseBench reads `go test -bench -benchmem` output and keeps, per
// benchmark, the minimum of each metric across repeated -count lines.
func parseBench(r io.Reader) (Suite, error) {
	suite := Suite{Benchmarks: map[string]Sample{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  <ns> ns/op  <B> B/op  <allocs> allocs/op
		if len(fields) < 4 {
			continue
		}
		s := Sample{Samples: 1, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 2; i+1 < len(fields); i++ {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Suite{}, fmt.Errorf("bad ns/op in %q: %w", line, err)
				}
				s.NsPerOp = f
			case "B/op":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return Suite{}, fmt.Errorf("bad B/op in %q: %w", line, err)
				}
				s.BytesPerOp = n
			case "allocs/op":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return Suite{}, fmt.Errorf("bad allocs/op in %q: %w", line, err)
				}
				s.AllocsPerOp = n
			}
		}
		if s.NsPerOp < 0 {
			continue // a Benchmark-prefixed line without measurements
		}
		name := normalizeName(fields[0])
		if prev, ok := suite.Benchmarks[name]; ok {
			s.Samples = prev.Samples + 1
			if prev.NsPerOp < s.NsPerOp {
				s.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp >= 0 && prev.BytesPerOp < s.BytesPerOp {
				s.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp >= 0 && prev.AllocsPerOp < s.AllocsPerOp {
				s.AllocsPerOp = prev.AllocsPerOp
			}
		}
		suite.Benchmarks[name] = s
	}
	if err := sc.Err(); err != nil {
		return Suite{}, err
	}
	if len(suite.Benchmarks) == 0 {
		return Suite{}, fmt.Errorf("no benchmark lines found")
	}
	return suite, nil
}

// compare checks every baseline benchmark against the current run and
// renders a human-readable table; regressions lists the failures.
func compare(base, cur Suite, maxTime, maxAllocs float64) (report string, regressions []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %8s   %14s %14s %8s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δtime", "base allocs", "cur allocs", "Δallocs")
	for _, name := range names {
		bs := base.Benchmarks[name]
		cs, ok := cur.Benchmarks[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current run", name))
			fmt.Fprintf(&b, "%-28s %14.0f %14s\n", name, bs.NsPerOp, "MISSING")
			continue
		}
		dt := ratio(cs.NsPerOp, bs.NsPerOp)
		da := ratio(float64(cs.AllocsPerOp), float64(bs.AllocsPerOp))
		mark := ""
		if dt > maxTime {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %+.1f%% (limit %+.0f%%)", name, dt*100, maxTime*100))
			mark = "  << TIME REGRESSION"
		}
		if da > maxAllocs {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %+.1f%% (limit %+.0f%%)", name, da*100, maxAllocs*100))
			mark += "  << ALLOC REGRESSION"
		}
		fmt.Fprintf(&b, "%-28s %14.0f %14.0f %+7.1f%%   %14d %14d %+7.1f%%%s\n",
			name, bs.NsPerOp, cs.NsPerOp, dt*100, bs.AllocsPerOp, cs.AllocsPerOp, da*100, mark)
	}
	for _, r := range regressions {
		fmt.Fprintf(&b, "FAIL: %s\n", r)
	}
	return b.String(), regressions
}

// ratio is cur/base - 1, tolerating a zero base (no measurement: any
// current value passes).
func ratio(cur, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return cur/base - 1
}
