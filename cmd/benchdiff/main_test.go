package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: dlrmperf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCalibrateParallel  	       2	 734804618 ns/op	 6590592 B/op	  220363 allocs/op
BenchmarkCalibrateParallel  	       2	 742117754 ns/op	 6590600 B/op	  220365 allocs/op
BenchmarkPredictBatchCached-8 	   41731	     29180 ns/op	   12520 B/op	     151 allocs/op
BenchmarkPredictBatchCached-8 	   39862	     29054 ns/op	   12524 B/op	     152 allocs/op
PASS
ok  	dlrmperf	26.656s
`

func parsed(t *testing.T) Suite {
	t.Helper()
	s, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParseBench: names normalize (Benchmark prefix, -GOMAXPROCS
// suffix), and repeated -count lines keep the per-metric minimum.
func TestParseBench(t *testing.T) {
	s := parsed(t)
	if len(s.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(s.Benchmarks), s)
	}
	cal, ok := s.Benchmarks["CalibrateParallel"]
	if !ok {
		t.Fatalf("CalibrateParallel missing: %+v", s)
	}
	if cal.NsPerOp != 734804618 || cal.AllocsPerOp != 220363 || cal.BytesPerOp != 6590592 || cal.Samples != 2 {
		t.Errorf("CalibrateParallel min-aggregation wrong: %+v", cal)
	}
	pb, ok := s.Benchmarks["PredictBatchCached"]
	if !ok {
		t.Fatalf("PredictBatchCached (suffix-stripped) missing: %+v", s)
	}
	if pb.NsPerOp != 29054 || pb.AllocsPerOp != 151 || pb.BytesPerOp != 12520 {
		t.Errorf("PredictBatchCached min-aggregation wrong: %+v", pb)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench text accepted")
	}
}

// TestCompareIdenticalPasses: the tree compared against itself is
// never a regression.
func TestCompareIdenticalPasses(t *testing.T) {
	s := parsed(t)
	report, regressions := compare(s, s, 0.25, 0.10)
	if len(regressions) != 0 {
		t.Fatalf("self-compare regressed: %v\n%s", regressions, report)
	}
}

// TestCompareSyntheticAllocRegression is the gate's acceptance
// criterion kept as a permanent test: a synthetic 2x allocs/op
// regression must fail even when timing is unchanged.
func TestCompareSyntheticAllocRegression(t *testing.T) {
	base := parsed(t)
	cur := Suite{Benchmarks: map[string]Sample{}}
	for name, s := range base.Benchmarks {
		s.AllocsPerOp *= 2
		cur.Benchmarks[name] = s
	}
	report, regressions := compare(base, cur, 0.25, 0.10)
	if len(regressions) != 2 {
		t.Fatalf("2x allocs regression produced %d failures, want 2:\n%s", len(regressions), report)
	}
	for _, r := range regressions {
		if !strings.Contains(r, "allocs/op") {
			t.Errorf("regression %q does not name allocs/op", r)
		}
	}
	if !strings.Contains(report, "ALLOC REGRESSION") {
		t.Errorf("report does not flag the alloc regression:\n%s", report)
	}
}

// TestCompareTimeRegression: +50% ns/op trips the default +25% bound;
// +10% does not.
func TestCompareTimeRegression(t *testing.T) {
	base := parsed(t)
	slow := Suite{Benchmarks: map[string]Sample{}}
	for name, s := range base.Benchmarks {
		s.NsPerOp *= 1.5
		slow.Benchmarks[name] = s
	}
	if _, regressions := compare(base, slow, 0.25, 0.10); len(regressions) != 2 {
		t.Fatalf("+50%% time regression produced %d failures, want 2", len(regressions))
	}
	mild := Suite{Benchmarks: map[string]Sample{}}
	for name, s := range base.Benchmarks {
		s.NsPerOp *= 1.1
		mild.Benchmarks[name] = s
	}
	if report, regressions := compare(base, mild, 0.25, 0.10); len(regressions) != 0 {
		t.Fatalf("+10%% time flagged as regression: %v\n%s", regressions, report)
	}
}

// TestRatchetTightens: a faster current run pulls the baseline down to
// the new minima, per metric independently.
func TestRatchetTightens(t *testing.T) {
	base := parsed(t)
	cur := Suite{Benchmarks: map[string]Sample{}}
	for name, s := range base.Benchmarks {
		s.NsPerOp *= 0.5
		s.AllocsPerOp /= 2
		s.Samples = 5
		cur.Benchmarks[name] = s
	}
	merged, notes := ratchetSuite(base, cur)
	if len(notes) != 2 {
		t.Fatalf("ratchet produced %d notes, want 2: %v", len(notes), notes)
	}
	for name, bs := range base.Benchmarks {
		ms := merged.Benchmarks[name]
		if ms.NsPerOp != bs.NsPerOp*0.5 || ms.AllocsPerOp != bs.AllocsPerOp/2 {
			t.Errorf("%s not tightened: base %+v merged %+v", name, bs, ms)
		}
		if ms.Samples != 5 {
			t.Errorf("%s did not take current sample count: %+v", name, ms)
		}
	}
}

// TestRatchetNeverLoosens is the gate's key invariant: a slower,
// heavier current run leaves every baseline metric untouched, so a
// ratchet run can only ever keep or shrink the bounds.
func TestRatchetNeverLoosens(t *testing.T) {
	base := parsed(t)
	cur := Suite{Benchmarks: map[string]Sample{}}
	for name, s := range base.Benchmarks {
		s.NsPerOp *= 3
		s.BytesPerOp *= 3
		s.AllocsPerOp *= 3
		cur.Benchmarks[name] = s
	}
	merged, notes := ratchetSuite(base, cur)
	if len(notes) != 0 {
		t.Fatalf("slower run produced ratchet notes: %v", notes)
	}
	for name, bs := range base.Benchmarks {
		if merged.Benchmarks[name] != bs {
			t.Errorf("%s loosened: base %+v merged %+v", name, bs, merged.Benchmarks[name])
		}
	}
}

// TestRatchetMixedDirections: one metric improves while another
// regresses; only the improvement lands.
func TestRatchetMixedDirections(t *testing.T) {
	base := parsed(t)
	cur := Suite{Benchmarks: map[string]Sample{}}
	for name, s := range base.Benchmarks {
		s.NsPerOp *= 0.8 // faster
		s.AllocsPerOp *= 2
		cur.Benchmarks[name] = s
	}
	merged, _ := ratchetSuite(base, cur)
	for name, bs := range base.Benchmarks {
		ms := merged.Benchmarks[name]
		if ms.NsPerOp != bs.NsPerOp*0.8 {
			t.Errorf("%s ns/op not tightened: %+v", name, ms)
		}
		if ms.AllocsPerOp != bs.AllocsPerOp {
			t.Errorf("%s allocs/op loosened from %d to %d", name, bs.AllocsPerOp, ms.AllocsPerOp)
		}
	}
}

// TestRatchetAddsAndKeeps: benchmarks new in the current run join the
// baseline; baseline-only benchmarks survive so a ratchet run can never
// silently drop a gate.
func TestRatchetAddsAndKeeps(t *testing.T) {
	base := parsed(t)
	cur := Suite{Benchmarks: map[string]Sample{
		"PredictSingleCached": {NsPerOp: 900, BytesPerOp: 512, AllocsPerOp: 3, Samples: 5},
	}}
	merged, notes := ratchetSuite(base, cur)
	if len(merged.Benchmarks) != len(base.Benchmarks)+1 {
		t.Fatalf("merged has %d benchmarks, want %d", len(merged.Benchmarks), len(base.Benchmarks)+1)
	}
	if got := merged.Benchmarks["PredictSingleCached"]; got.NsPerOp != 900 || got.AllocsPerOp != 3 {
		t.Errorf("new benchmark not added verbatim: %+v", got)
	}
	for name, bs := range base.Benchmarks {
		if merged.Benchmarks[name] != bs {
			t.Errorf("baseline-only %s changed: %+v", name, merged.Benchmarks[name])
		}
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "added") {
		t.Errorf("added benchmark not noted: %v", notes)
	}
}

// TestCompareMissingBenchmark: a benchmark that vanished from the
// current run fails the gate (a silently-deleted benchmark must not
// pass).
func TestCompareMissingBenchmark(t *testing.T) {
	base := parsed(t)
	cur := Suite{Benchmarks: map[string]Sample{
		"CalibrateParallel": base.Benchmarks["CalibrateParallel"],
	}}
	_, regressions := compare(base, cur, 0.25, 0.10)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", regressions)
	}
}
