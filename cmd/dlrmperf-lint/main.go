// Command dlrmperf-lint runs the repository's invariant lint suite
// (internal/analysis: hotpath, atomicfield, deterministic, ctxflow)
// over the given package patterns and exits non-zero on any finding.
//
// Usage:
//
//	dlrmperf-lint [packages]   # defaults to ./...
//
// Suppress a finding with a justified escape-hatch comment on the
// offending line or the line above:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmperf/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlrmperf-lint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range pkgs {
		findings, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlrmperf-lint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
